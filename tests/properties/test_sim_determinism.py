"""Property tests: the simulator is deterministic and order-correct."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments import PROTOCOL_SEQ
from repro.scenarios import (
    Campaign,
    Crash,
    ImpairLink,
    ScenarioSpec,
    SwitchOnFault,
    run_campaign,
)
from repro.sim import FaultInjector, Machine, Simulator


@st.composite
def schedules(draw):
    """A random batch of (delay, priority) events."""
    n = draw(st.integers(min_value=1, max_value=30))
    return [
        (
            draw(st.floats(min_value=0.0, max_value=10.0, allow_nan=False)),
            draw(st.sampled_from([0, 10, 20])),
        )
        for _ in range(n)
    ]


class TestDeterminism:
    @given(schedules(), st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=50, deadline=None)
    def test_same_seed_same_execution(self, sched, seed):
        def run():
            sim = Simulator(seed=seed)
            order = []
            for i, (delay, prio) in enumerate(sched):
                sim.schedule(delay, order.append, i, priority=prio)
            # sprinkle some randomness consumption in the middle
            sim.schedule(5.0, lambda: sim.rng.stream("x").random(3))
            sim.run()
            return order, sim.now

        assert run() == run()

    @given(schedules())
    @settings(max_examples=50, deadline=None)
    def test_events_fire_in_nondecreasing_time(self, sched):
        sim = Simulator(seed=0)
        times = []
        for delay, prio in sched:
            sim.schedule(delay, lambda: times.append(sim.now), priority=prio)
        sim.run()
        assert times == sorted(times)

    @given(schedules())
    @settings(max_examples=50, deadline=None)
    def test_all_scheduled_events_fire(self, sched):
        sim = Simulator(seed=0)
        fired = []
        for i, (delay, prio) in enumerate(sched):
            sim.schedule(delay, fired.append, i, priority=prio)
        sim.run()
        assert sorted(fired) == list(range(len(sched)))


class TestMachineInvariants:
    @given(
        st.lists(
            st.floats(min_value=0.0, max_value=0.1, allow_nan=False),
            min_size=1,
            max_size=20,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_serial_cpu_completion_times(self, costs):
        """Completion time of task k = sum of costs up to k (all queued
        at t=0 on an idle machine)."""
        sim = Simulator(seed=0)
        machine = Machine(sim, 0)
        completions = []
        for cost in costs:
            machine.execute(cost, lambda: completions.append(sim.now))
        sim.run()
        expected, acc = [], 0.0
        for cost in costs:
            acc += cost
            expected.append(acc)
        assert all(abs(a - b) < 1e-9 for a, b in zip(completions, expected))
        assert abs(machine.cpu_busy_total - acc) < 1e-9

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
                st.floats(min_value=0.0, max_value=0.05, allow_nan=False),
            ),
            min_size=1,
            max_size=15,
        ),
        st.floats(min_value=0.0, max_value=1.5, allow_nan=False),
    )
    @settings(max_examples=50, deadline=None)
    def test_crash_stops_everything_after(self, tasks, crash_at):
        sim = Simulator(seed=0)
        machine = Machine(sim, 0)
        completions = []
        for submit_at, cost in tasks:
            sim.schedule_at(
                submit_at,
                lambda c=cost: machine.execute(c, lambda: completions.append(sim.now)),
            )
        machine.crash_at(crash_at)
        sim.run()
        assert all(t <= crash_at + 1e-12 for t in completions)


class TestFaultInjectionDeterminism:
    """Fault injection preserves the seed ⇒ execution contract."""

    # A scenario exercising every fault-path RNG consumer at once: an
    # injected crash, a fault-triggered switch, and a lossy/reordering
    # link, on a short run so the property test stays fast.
    SPEC = ScenarioSpec(
        name="determinism-probe",
        n=3,
        duration=2.0,
        load_msgs_per_sec=80.0,
        faults=(
            Crash(at=1.0, machine=2),
            ImpairLink(at=0.5, src=0, dst=1, loss_rate=0.2,
                       reorder_rate=0.3, reorder_delay=0.002, until=1.5),
        ),
        switches=(SwitchOnFault(protocol=PROTOCOL_SEQ, fault_index=0, delay=0.1),),
        quiescence_extra=8.0,
    )

    def _campaign_json(self, seeds) -> str:
        campaign = Campaign(name="det", scenarios=(self.SPEC,))
        return run_campaign(campaign, seeds=seeds).to_json()

    def test_same_seed_byte_identical_campaign_json(self):
        assert self._campaign_json((0, 1)) == self._campaign_json((0, 1))

    def test_different_seed_changes_execution(self):
        campaign = Campaign(name="det", scenarios=(self.SPEC,))
        runs = {
            seed: run_campaign(campaign, seeds=(seed,)).results[0]
            for seed in (0, 1)
        }
        # Same structural outcome...
        assert all(r.ok for r in runs.values())
        # ...but genuinely different executions (jitter/loss draws differ).
        assert runs[0].events_processed != runs[1].events_processed

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_random_crash_schedule_reproducible(self, seed):
        def draw():
            sim = Simulator(seed=seed)
            machines = [Machine(sim, i) for i in range(5)]
            injector = FaultInjector(sim, machines, name="prop")
            return injector.random_crashes(3, start=0.5, window=2.0)

        assert draw() == draw()
