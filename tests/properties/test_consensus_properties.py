"""Property tests: consensus safety under adversarial ◊S suspicion patterns.

The oracle failure detector lets hypothesis script arbitrary suspicion /
restore sequences (◊S permits any finite amount of wrong suspicion).
Safety (agreement, validity, integrity) must hold on *every* schedule;
termination is checked for schedules that eventually quiesce — which the
generated scripts do, since every suspicion of a live process is
eventually restored.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.consensus import CtConsensusModule
from repro.fd import OracleFd
from repro.kernel import Module, System, WellKnown
from repro.net import Rp2pModule, SimNetwork, SwitchedLan, UdpModule
from repro.rbcast import RbcastModule
from repro.sim import ConstantLatency


class App(Module):
    REQUIRES = (WellKnown.CONSENSUS,)
    PROTOCOL = "app"

    def __init__(self, stack):
        super().__init__(stack)
        self.decisions = {}
        self.subscribe(
            WellKnown.CONSENSUS,
            "decide",
            lambda iid, v, s: self.decisions.setdefault(iid, v),
        )


@st.composite
def suspicion_scripts(draw):
    """Per-stack ◊S-compatible scripts: every suspicion gets restored."""
    seed = draw(st.integers(min_value=0, max_value=2**16))
    n = draw(st.sampled_from([3, 5]))
    scripts = {}
    for stack_id in range(n):
        events = []
        n_suspicions = draw(st.integers(min_value=0, max_value=4))
        for _ in range(n_suspicions):
            target = draw(st.integers(min_value=0, max_value=n - 1))
            t_suspect = draw(
                st.floats(min_value=0.0, max_value=0.5, allow_nan=False)
            )
            hold = draw(st.floats(min_value=0.01, max_value=0.4, allow_nan=False))
            events.append((t_suspect, "suspect", target))
            events.append((t_suspect + hold, "restore", target))
        scripts[stack_id] = sorted(events)
    return seed, n, scripts


@given(suspicion_scripts())
@settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
def test_consensus_safe_and_live_under_wrong_suspicions(case):
    seed, n, scripts = case
    sys_ = System(n=n, seed=seed)
    net = SimNetwork(
        sys_.sim, sys_.machines, SwitchedLan(latency=ConstantLatency(0.0002))
    )
    group = list(range(n))
    apps = []
    for stck in sys_.stacks:
        stck.add_module(UdpModule(stck, net))
        stck.add_module(Rp2pModule(stck))
        stck.add_module(OracleFd(stck, group, script=scripts[stck.stack_id]))
        stck.add_module(RbcastModule(stck, group))
        stck.add_module(CtConsensusModule(stck, group))
        a = App(stck)
        stck.add_module(a)
        apps.append(a)

    for iid in range(3):
        for i, a in enumerate(apps):
            a.call(WellKnown.CONSENSUS, "propose", iid, f"i{iid}-p{i}", 64)
    sys_.run(until=15.0)

    for iid in range(3):
        values = {a.decisions.get(iid) for a in apps}
        # Termination: everyone decided (suspicions were all transient).
        assert None not in values, f"instance {iid} did not terminate"
        # Agreement: a single decided value...
        assert len(values) == 1
        # Validity: ...that was actually proposed.
        assert values.pop() in {f"i{iid}-p{i}" for i in range(n)}
