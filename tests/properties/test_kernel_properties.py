"""Property tests: kernel binding/blocking invariants under random schedules."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dpu.properties import check_weak_stack_well_formedness
from repro.kernel import Module, System


class Provider(Module):
    PROVIDES = ("svc",)
    PROTOCOL = "provider"

    def __init__(self, stack):
        super().__init__(stack)
        self.served = []
        self.export_call("svc", "work", self.served.append)


class Caller(Module):
    REQUIRES = ("svc",)
    PROTOCOL = "caller"


#: A step is (time, action); actions: "call", "bind", "unbind".
@st.composite
def step_sequences(draw):
    n = draw(st.integers(min_value=1, max_value=25))
    steps = []
    for _ in range(n):
        t = draw(st.floats(min_value=0.0, max_value=5.0, allow_nan=False))
        action = draw(st.sampled_from(["call", "call", "bind", "unbind"]))
        steps.append((t, action))
    # Always terminate with a final bind so the weak property can hold.
    steps.append((6.0, "bind"))
    return sorted(steps)


class TestBindingBlocking:
    @given(step_sequences())
    @settings(max_examples=40, deadline=None)
    def test_every_call_eventually_served_and_weakly_well_formed(self, steps):
        sys_ = System(n=1, seed=0)
        stack = sys_.stack(0)
        provider = stack.add_module(Provider(stack), bind=False)
        caller = stack.add_module(Caller(stack))
        issued = [0]

        def do(action):
            if action == "call":
                caller.call("svc", "work", issued[0])
                issued[0] += 1
            elif action == "bind":
                if not stack.bindings.is_bound("svc"):
                    stack.bind("svc", provider)
            else:
                if stack.bindings.is_bound("svc"):
                    stack.unbind("svc")

        for t, action in steps:
            sys_.sim.schedule_at(t, do, action)
        sys_.run()

        # Every issued call was served exactly once, in issue order.
        assert provider.served == list(range(issued[0]))
        # And the recorded trace satisfies weak stack-well-formedness.
        assert check_weak_stack_well_formedness(sys_.trace) == []

    @given(step_sequences())
    @settings(max_examples=40, deadline=None)
    def test_at_most_one_bound_provider_always(self, steps):
        sys_ = System(n=1, seed=0)
        stack = sys_.stack(0)
        p1 = stack.add_module(Provider(stack), bind=False)
        p2 = stack.add_module(Provider(stack), bind=False)
        providers = [p1, p2]
        flip = [0]
        observed = []

        def do(action):
            if action == "bind":
                if not stack.bindings.is_bound("svc"):
                    stack.bind("svc", providers[flip[0] % 2])
                    flip[0] += 1
            elif action == "unbind":
                if stack.bindings.is_bound("svc"):
                    stack.unbind("svc")
            observed.append(
                sum(1 for m in providers if stack.bound_module("svc") is m)
            )

        for t, action in steps:
            sys_.sim.schedule_at(t, do, action)
        sys_.run()
        assert all(c <= 1 for c in observed)
