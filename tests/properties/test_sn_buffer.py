"""Property tests: the contiguous sequence-number delivery buffer."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.abcast.base import AbcastRecord, SnDeliveryBuffer


@st.composite
def permuted_prefix(draw):
    """A permutation of 0..n-1 (arrival order of sequence numbers)."""
    n = draw(st.integers(min_value=1, max_value=40))
    return draw(st.permutations(range(n)))


class TestSnBuffer:
    @given(permuted_prefix())
    @settings(max_examples=100, deadline=None)
    def test_releases_exactly_in_sn_order(self, arrival_order):
        buf = SnDeliveryBuffer()
        released = []
        for sn in arrival_order:
            released.extend(
                r.payload for r in buf.offer(sn, AbcastRecord((0, sn), sn, 1))
            )
        assert released == sorted(arrival_order)
        assert buf.pending_count == 0
        assert buf.next_sn == len(arrival_order)

    @given(permuted_prefix(), st.data())
    @settings(max_examples=100, deadline=None)
    def test_duplicates_never_change_output(self, arrival_order, data):
        """Re-offering an *already offered* sn (a wire duplicate) never
        changes what is released."""
        buf = SnDeliveryBuffer()
        released = []
        offered = []
        for sn in arrival_order:
            offered.append(sn)
            released.extend(
                r.payload for r in buf.offer(sn, AbcastRecord((0, sn), sn, 1))
            )
            if data.draw(st.booleans()):
                dup = data.draw(st.sampled_from(offered))
                released.extend(
                    r.payload for r in buf.offer(dup, AbcastRecord((9, dup), f"dup{dup}", 1))
                )
        assert released == sorted(arrival_order)

    @given(permuted_prefix())
    @settings(max_examples=100, deadline=None)
    def test_gap_blocks_everything_behind_it(self, arrival_order):
        """Withhold sn=0: nothing may ever be released."""
        buf = SnDeliveryBuffer()
        for sn in arrival_order:
            if sn == 0:
                continue
            assert buf.offer(sn, AbcastRecord((0, sn), sn, 1)) == []
        assert buf.next_sn == 0
