"""Unit tests: shared atomic-broadcast machinery."""

import pytest

from repro.abcast.base import AbcastRecord, SnDeliveryBuffer
from repro.abcast import CtAbcastModule
from repro.kernel import System


class TestSnDeliveryBuffer:
    def test_in_order_release(self):
        buf = SnDeliveryBuffer()
        records = [AbcastRecord((0, i), f"m{i}", 10) for i in range(3)]
        out = []
        for i, r in enumerate(records):
            out.extend(buf.offer(i, r))
        assert [r.payload for r in out] == ["m0", "m1", "m2"]

    def test_gap_buffers_until_filled(self):
        buf = SnDeliveryBuffer()
        r0, r1, r2 = (AbcastRecord((0, i), f"m{i}", 10) for i in range(3))
        assert buf.offer(1, r1) == []
        assert buf.offer(2, r2) == []
        assert buf.pending_count == 2
        released = buf.offer(0, r0)
        assert [r.payload for r in released] == ["m0", "m1", "m2"]
        assert buf.pending_count == 0
        assert buf.next_sn == 3

    def test_stale_duplicate_ignored(self):
        buf = SnDeliveryBuffer()
        r = AbcastRecord((0, 0), "m", 10)
        buf.offer(0, r)
        assert buf.offer(0, r) == []

    def test_duplicate_pending_first_wins(self):
        buf = SnDeliveryBuffer()
        a = AbcastRecord((0, 0), "first", 10)
        b = AbcastRecord((0, 1), "second", 10)
        buf.offer(1, a)
        buf.offer(1, b)
        released = buf.offer(0, AbcastRecord((9, 9), "zero", 10))
        assert [r.payload for r in released] == ["zero", "first"]


class TestRecord:
    def test_origin_from_uid(self):
        assert AbcastRecord((3, 7), "x", 10).origin == 3


class TestModuleBaseGuards:
    def test_member_must_be_in_group(self):
        sys_ = System(n=2, seed=0)
        with pytest.raises(ValueError):
            CtAbcastModule(sys_.stack(0), group=[1])

    def test_default_instance_tag(self):
        sys_ = System(n=2, seed=0)
        m = CtAbcastModule(sys_.stack(0), group=[0, 1])
        assert m.instance_tag == "abcast-ct/v0"

    def test_explicit_instance_tag(self):
        sys_ = System(n=2, seed=0)
        m = CtAbcastModule(sys_.stack(0), group=[0, 1], instance_tag="x/v3")
        assert m.instance_tag == "x/v3"

    def test_uid_dedup_in_adeliver_record(self):
        sys_ = System(n=2, seed=0)
        st = sys_.stack(0)
        m = CtAbcastModule(st, group=[0, 1])
        st.add_module(m)
        rec = AbcastRecord((0, 0), "m", 10)
        assert m._adeliver_record(rec) is True
        assert m._adeliver_record(rec) is False
        assert m.counters.get("duplicate_deliveries_suppressed") == 1
        assert m.delivered_uids == [(0, 0)]
