"""Unit tests: the Section 3 property checkers, on synthetic traces."""

import pytest

from repro.errors import PropertyViolation
from repro.dpu.properties import (
    assert_strong_stack_well_formedness,
    assert_weak_stack_well_formedness,
    check_strong_protocol_operationability,
    check_strong_stack_well_formedness,
    check_weak_protocol_operationability,
    check_weak_stack_well_formedness,
)
from repro.kernel import TraceKind, TraceRecorder


def trace_of(*events):
    tr = TraceRecorder()
    for time, kind, stack_id, kwargs in events:
        tr.record(time, kind, stack_id, **kwargs)
    return tr


class TestWeakWellFormedness:
    def test_released_block_is_fine(self):
        tr = trace_of(
            (1.0, TraceKind.CALL_BLOCKED, 0, dict(service="s", call_id="0:1")),
            (2.0, TraceKind.CALL_UNBLOCKED, 0, dict(service="s", call_id="0:1")),
        )
        assert check_weak_stack_well_formedness(tr) == []

    def test_permanent_block_is_violation(self):
        tr = trace_of(
            (1.0, TraceKind.CALL_BLOCKED, 0, dict(service="s", call_id="0:1")),
        )
        violations = check_weak_stack_well_formedness(tr)
        assert len(violations) == 1 and "0:1" in violations[0]

    def test_block_on_crashed_stack_exempt(self):
        tr = trace_of(
            (0.5, TraceKind.CRASH, 0, {}),
            (1.0, TraceKind.CALL_BLOCKED, 0, dict(service="s", call_id="0:1")),
        )
        assert check_weak_stack_well_formedness(tr) == []

    def test_block_before_crash_exempt_too(self):
        # The stack crashed after blocking: the obligation dies with it.
        tr = trace_of(
            (1.0, TraceKind.CALL_BLOCKED, 0, dict(service="s", call_id="0:1")),
            (2.0, TraceKind.CRASH, 0, {}),
        )
        # The paper's properties quantify over non-crashed stacks: an
        # obligation pending at the crash instant dies with the stack.
        assert check_weak_stack_well_formedness(tr) == []

    def test_ignore_after_horizon(self):
        tr = trace_of(
            (9.5, TraceKind.CALL_BLOCKED, 0, dict(service="s", call_id="0:9")),
        )
        assert check_weak_stack_well_formedness(tr, ignore_after=9.0) == []

    def test_assertion_twin_raises(self):
        tr = trace_of(
            (1.0, TraceKind.CALL_BLOCKED, 0, dict(service="s", call_id="0:1")),
        )
        with pytest.raises(PropertyViolation):
            assert_weak_stack_well_formedness(tr)


class TestStrongWellFormedness:
    def test_any_block_is_violation(self):
        tr = trace_of(
            (1.0, TraceKind.CALL_BLOCKED, 0, dict(service="s", call_id="0:1")),
            (2.0, TraceKind.CALL_UNBLOCKED, 0, dict(service="s", call_id="0:1")),
        )
        assert len(check_strong_stack_well_formedness(tr)) == 1
        with pytest.raises(PropertyViolation):
            assert_strong_stack_well_formedness(tr)

    def test_clean_trace_passes(self):
        tr = trace_of((1.0, TraceKind.CALL, 0, dict(service="s", call_id="0:1")))
        assert check_strong_stack_well_formedness(tr) == []


class TestOperationability:
    def _bind(self, t, stack, protocol="P"):
        return (t, TraceKind.BIND, stack, dict(service="p", module=f"m@{stack}", protocol=protocol))

    def _added(self, t, stack, protocol="P"):
        return (t, TraceKind.MODULE_ADDED, stack, dict(module=f"m@{stack}", protocol=protocol))

    def _removed(self, t, stack, protocol="P"):
        return (t, TraceKind.MODULE_REMOVED, stack, dict(module=f"m@{stack}", protocol=protocol))

    def test_weak_satisfied_by_later_addition(self):
        tr = trace_of(
            self._added(0.0, 0),
            self._bind(1.0, 0),
            self._added(5.0, 1),  # "eventually contains"
        )
        assert check_weak_protocol_operationability(tr, "P", [0, 1]) == []

    def test_weak_violated_when_never_added(self):
        tr = trace_of(self._added(0.0, 0), self._bind(1.0, 0))
        violations = check_weak_protocol_operationability(tr, "P", [0, 1])
        assert len(violations) == 1 and "stack 1" in violations[0]

    def test_weak_crashed_stack_exempt(self):
        tr = trace_of(
            (0.5, TraceKind.CRASH, 1, {}),
            self._added(0.0, 0),
            self._bind(1.0, 0),
        )
        assert check_weak_protocol_operationability(tr, "P", [0, 1]) == []

    def test_weak_removed_before_bind_counts_as_violation(self):
        tr = trace_of(
            self._added(0.0, 0),
            self._added(0.0, 1),
            self._removed(0.5, 1),
            self._bind(1.0, 0),
        )
        violations = check_weak_protocol_operationability(tr, "P", [0, 1])
        assert len(violations) == 1

    def test_strong_requires_presence_at_bind_instant(self):
        tr = trace_of(
            self._added(0.0, 0),
            self._bind(1.0, 0),
            self._added(5.0, 1),  # too late for the strong flavour
        )
        assert check_weak_protocol_operationability(tr, "P", [0, 1]) == []
        violations = check_strong_protocol_operationability(tr, "P", [0, 1])
        assert len(violations) == 1

    def test_strong_satisfied_with_simultaneous_presence(self):
        tr = trace_of(
            self._added(0.0, 0),
            self._added(0.0, 1),
            self._bind(1.0, 0),
        )
        assert check_strong_protocol_operationability(tr, "P", [0, 1]) == []

    def test_other_protocols_ignored(self):
        tr = trace_of(
            self._added(0.0, 0, protocol="Q"),
            self._bind(1.0, 0, protocol="Q"),
        )
        assert check_weak_protocol_operationability(tr, "P", [0, 1]) == []
