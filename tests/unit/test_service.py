"""Unit tests: service specifications and naming conventions."""

import pytest

from repro.kernel.service import (
    ABCAST_SPEC,
    ServiceSpec,
    WellKnown,
    is_replacement_service,
    replacement_service_name,
    spec_for,
)


class TestServiceSpec:
    def test_valid_names(self):
        for name in ("abcast", "r-abcast", "fd", "my_service2"):
            assert ServiceSpec(name).name == name

    def test_invalid_names_rejected(self):
        for bad in ("", "Abcast", "2abc", "a b", "-x"):
            with pytest.raises(ValueError):
                ServiceSpec(bad)

    def test_vocabulary_checks_when_declared(self):
        spec = ServiceSpec("s", calls={"go"}, responses={"done"})
        assert spec.allows_call("go")
        assert not spec.allows_call("stop")
        assert spec.allows_response("done")
        assert not spec.allows_response("other")

    def test_empty_vocabulary_allows_everything(self):
        spec = ServiceSpec("s")
        assert spec.allows_call("anything")
        assert spec.allows_response("anything")

    def test_frozen_sets(self):
        spec = ServiceSpec("s", calls=["a", "b"])
        assert isinstance(spec.calls, frozenset)


class TestReplacementNaming:
    def test_r_prefix(self):
        assert replacement_service_name("abcast") == "r-abcast"

    def test_is_replacement(self):
        assert is_replacement_service("r-abcast")
        assert not is_replacement_service("abcast")

    def test_wellknown_consistency(self):
        assert WellKnown.R_ABCAST == replacement_service_name(WellKnown.ABCAST)
        assert WellKnown.R_CONSENSUS == replacement_service_name(WellKnown.CONSENSUS)


class TestWellKnownSpecs:
    def test_spec_lookup(self):
        assert spec_for("abcast") is ABCAST_SPEC
        assert spec_for("nonexistent") is None

    def test_abcast_vocabulary(self):
        assert ABCAST_SPEC.allows_call("abcast")
        assert ABCAST_SPEC.allows_response("adeliver")
