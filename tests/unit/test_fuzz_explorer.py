"""Unit tests for the small-scope exhaustive switch-chain explorer.

The headline pin: 2 stacks × 2 versions has **exactly 614**
interleavings, every one chain-agreeing — the count is cross-checked
here against an independent non-memoised enumeration, so the memoised DP
cannot silently drop branches.  The seeded ``stack0_skips_guard`` bug
proves the checker has teeth on exhaustive branches too.
"""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.fuzz.explorer import (
    ExplorerConfig,
    _apply,
    _enabled,
    _leaf_outcome,
    _violates,
    explore,
)


def _brute_force(config: ExplorerConfig):
    """Independent plain-DFS enumeration: no memoisation, no sharing."""
    initial = ((), tuple([(0, 0, (), None, ())] * config.stacks))
    leaves = violating = 0
    outcomes = set()
    stack = [initial]
    while stack:
        state = stack.pop()
        events = _enabled(state, config.versions)
        if not events:
            leaves += 1
            outcome = _leaf_outcome(state, config)
            outcomes.add(outcome)
            violating += 1 if _violates(outcome) else 0
            continue
        for event in events:
            stack.append(_apply(state, event, config))
    return leaves, violating, outcomes


class TestPins:
    def test_2x2_guarded_has_exactly_614_interleavings_all_agreeing(self):
        result = explore(ExplorerConfig(stacks=2, versions=2))
        assert result.interleavings == 614
        assert result.violating == 0
        assert result.ok
        # Two distinct outcomes: both changes land, or the second is
        # discarded as stale everywhere (issued before stack 0 caught up).
        assert len(result.outcomes) == 2
        chains = {tuple(chain) for out in result.outcomes for chain in out}
        assert ("init", "p1", "p2") in chains
        assert ("init", "p1") in chains

    @pytest.mark.parametrize(
        "stacks,versions,leaves",
        [(2, 2, 614), (2, 3, 117410), (3, 2, 545700)],
    )
    def test_small_scope_coverage_is_exhaustive_and_agreeing(
        self, stacks, versions, leaves
    ):
        result = explore(ExplorerConfig(stacks=stacks, versions=versions))
        assert result.interleavings == leaves
        assert result.violating == 0

    def test_memoised_counts_match_independent_brute_force(self):
        for config in (
            ExplorerConfig(stacks=2, versions=2),
            ExplorerConfig(stacks=2, versions=2, guard=False),
            ExplorerConfig(stacks=2, versions=2, bug="stack0_skips_guard"),
            ExplorerConfig(stacks=3, versions=1),
        ):
            result = explore(config)
            leaves, violating, outcomes = _brute_force(config)
            assert result.interleavings == leaves
            assert result.violating == violating
            assert set(result.outcomes) == outcomes

    def test_unguarded_model_never_discards_so_single_outcome(self):
        # Without the guard every stack applies every change: chains
        # always converge to the full ("init", "p1", "p2") — agreement
        # holds vacuously in the model (the *scenario*-level anomaly
        # needs the real engine's reissue/timing machinery).
        result = explore(ExplorerConfig(stacks=2, versions=2, guard=False))
        assert result.interleavings == 936
        assert result.violating == 0
        assert len(result.outcomes) == 1


class TestSeededBug:
    def test_checker_catches_stack0_skips_guard(self):
        result = explore(
            ExplorerConfig(stacks=2, versions=2, bug="stack0_skips_guard")
        )
        assert result.interleavings == 696
        assert result.violating == 210
        assert not result.ok
        assert result.counterexamples  # a replayable event trace survives

    def test_counterexample_trace_replays_to_a_violating_leaf(self):
        config = ExplorerConfig(stacks=2, versions=2, bug="stack0_skips_guard")
        result = explore(config)
        state = ((), tuple([(0, 0, (), None, ())] * config.stacks))
        for token in result.counterexamples[0]:
            kind, target = token.split(":")
            event = (kind, int(target))
            assert event in _enabled(state, config.versions)
            state = _apply(state, event, config)
        assert not _enabled(state, config.versions)  # a leaf
        assert _violates(_leaf_outcome(state, config))


class TestConfigValidation:
    def test_rejects_large_scopes(self):
        with pytest.raises(ScenarioError):
            ExplorerConfig(stacks=5)
        with pytest.raises(ScenarioError):
            ExplorerConfig(versions=0)

    def test_rejects_unknown_bug(self):
        with pytest.raises(ScenarioError):
            ExplorerConfig(bug="nonexistent")

    def test_rejects_bad_issuers(self):
        with pytest.raises(ScenarioError):
            ExplorerConfig(stacks=2, versions=2, issuers=(0,))
        with pytest.raises(ScenarioError):
            ExplorerConfig(stacks=2, versions=2, issuers=(0, 5))

    def test_max_states_cap_is_enforced(self):
        with pytest.raises(ScenarioError):
            explore(ExplorerConfig(stacks=3, versions=3, max_states=10))


class TestIssuers:
    def test_lagging_issuer_produces_stale_discard_outcome(self):
        # Stack 1 issues change 2 while it may lag the log: the guard
        # discards the stale stamp on some branches, so two outcomes.
        result = explore(
            ExplorerConfig(stacks=2, versions=2, issuers=(0, 1))
        )
        assert result.ok
        assert len(result.outcomes) >= 2

    def test_report_dict_is_json_ready(self):
        import json

        result = explore(ExplorerConfig(stacks=2, versions=2))
        text = json.dumps(result.to_dict(), sort_keys=True)
        assert '"interleavings": 614' in text
