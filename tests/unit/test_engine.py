"""Unit tests: the simulator engine."""

import pytest

from repro.errors import ScheduleInPastError, SimulationError
from repro.sim import Simulator


class TestScheduling:
    def test_schedule_and_run(self, sim):
        fired = []
        sim.schedule(0.5, fired.append, "a")
        sim.schedule(0.25, fired.append, "b")
        sim.run()
        assert fired == ["b", "a"]
        assert sim.now == 0.5

    def test_schedule_at_absolute(self, sim):
        fired = []
        sim.schedule_at(1.5, fired.append, "x")
        sim.run()
        assert fired == ["x"] and sim.now == 1.5

    def test_negative_delay_rejected(self, sim):
        with pytest.raises(ScheduleInPastError):
            sim.schedule(-0.1, lambda: None)

    def test_schedule_at_past_rejected(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.run()
        with pytest.raises(ScheduleInPastError):
            sim.schedule_at(0.5, lambda: None)

    def test_call_soon_runs_at_current_instant(self, sim):
        order = []

        def first():
            order.append("first")
            sim.call_soon(lambda: order.append("soon"))

        sim.schedule(1.0, first)
        sim.schedule(1.0, lambda: order.append("second"))
        sim.run()
        # call_soon fires after everything already queued for that instant.
        assert order == ["first", "second", "soon"]
        assert sim.now == 1.0

    def test_cancel(self, sim):
        fired = []
        handle = sim.schedule(1.0, fired.append, "no")
        sim.cancel(handle)
        sim.run()
        assert fired == []


class TestRunControl:
    def test_until_inclusive_and_clock_advances(self, sim):
        fired = []
        sim.schedule(1.0, fired.append, 1)
        sim.schedule(3.0, fired.append, 3)
        sim.run(until=2.0)
        assert fired == [1]
        assert sim.now == 2.0  # clock reaches the horizon
        sim.run(until=4.0)
        assert fired == [1, 3]

    def test_event_exactly_at_until_fires(self, sim):
        fired = []
        sim.schedule(2.0, fired.append, "edge")
        sim.run(until=2.0)
        assert fired == ["edge"]

    def test_max_events_budget(self, sim):
        for i in range(10):
            sim.schedule(float(i + 1), lambda: None)
        with pytest.raises(SimulationError):
            sim.run(max_events=5)

    def test_stop_from_callback(self, sim):
        fired = []

        def stopper():
            fired.append("stop")
            sim.stop()

        sim.schedule(1.0, stopper)
        sim.schedule(2.0, fired.append, "late")
        sim.run()
        assert fired == ["stop"]
        sim.run()  # resumable
        assert fired == ["stop", "late"]

    def test_not_reentrant(self, sim):
        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_exceptions_propagate(self, sim):
        def boom():
            raise RuntimeError("boom")

        sim.schedule(1.0, boom)
        with pytest.raises(RuntimeError, match="boom"):
            sim.run()

    def test_at_end_hooks(self, sim):
        calls = []
        sim.at_end.append(lambda: calls.append("done"))
        sim.schedule(1.0, lambda: None)
        sim.run()
        assert calls == ["done"]


class TestBookkeeping:
    def test_events_processed_counts(self, sim):
        for i in range(4):
            sim.schedule(float(i + 1), lambda: None)
        sim.run()
        assert sim.events_processed == 4

    def test_pending_events(self, sim):
        sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        assert sim.pending_events == 2

    def test_trace_hook_called(self):
        seen = []
        sim = Simulator(seed=0, trace_hook=lambda t, h: seen.append(t))
        sim.schedule(0.5, lambda: None)
        sim.run()
        assert seen == [0.5]

    def test_events_processed_is_live_mid_run(self, sim):
        """Callbacks (and probes) read an up-to-date count during run()."""
        seen = []
        for i in range(3):
            sim.schedule(float(i + 1), lambda: seen.append(sim.events_processed))
        sim.run()
        assert seen == [1, 2, 3]
