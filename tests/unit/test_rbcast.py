"""Unit tests: uniform reliable broadcast."""

import pytest

from repro.kernel import Module, System
from repro.net import Rp2pModule, SimNetwork, SwitchedLan, UdpModule
from repro.rbcast import RBCAST_SERVICE, RbcastModule
from repro.sim import ConstantLatency


def build(n=4, seed=3, loss=0.0, relay=True):
    sys_ = System(n=n, seed=seed)
    net = SimNetwork(
        sys_.sim, sys_.machines,
        SwitchedLan(latency=ConstantLatency(0.0002), loss_rate=loss),
    )
    group = list(range(n))

    class App(Module):
        REQUIRES = (RBCAST_SERVICE,)
        PROTOCOL = "app"

        def __init__(self, stack):
            super().__init__(stack)
            self.got = []
            self.subscribe(
                RBCAST_SERVICE, "deliver", lambda o, p, s: self.got.append((o, p))
            )

    apps, rbcs = [], []
    for st in sys_.stacks:
        st.add_module(UdpModule(st, net))
        st.add_module(Rp2pModule(st))
        rbc = RbcastModule(st, group, relay=relay)
        st.add_module(rbc)
        rbcs.append(rbc)
        a = App(st)
        st.add_module(a)
        apps.append(a)
    return sys_, apps, rbcs


class TestBasics:
    def test_everyone_delivers_including_origin(self):
        sys_, apps, _ = build()
        apps[1].call(RBCAST_SERVICE, "broadcast", "m1", 64)
        sys_.run(until=2.0)
        assert all(a.got == [(1, "m1")] for a in apps)

    def test_no_duplicates_despite_relays(self):
        sys_, apps, rbcs = build()
        for i in range(10):
            apps[0].call(RBCAST_SERVICE, "broadcast", f"m{i}", 64)
        sys_.run(until=2.0)
        for a in apps:
            payloads = [p for _o, p in a.got]
            assert sorted(payloads) == sorted(set(payloads))
            assert len(payloads) == 10
        assert rbcs[1].counters.get("duplicates_suppressed") > 0

    def test_origin_not_in_group_rejected(self):
        sys_ = System(n=2, seed=0)
        with pytest.raises(ValueError):
            RbcastModule(sys_.stack(0), [1])


class TestAgreement:
    def test_crash_after_partial_send_relays_complete(self):
        """If any correct process delivers, all correct processes do —
        even when the origin crashes mid-broadcast."""
        sys_, apps, _ = build(n=4)
        apps[0].call(RBCAST_SERVICE, "broadcast", "fragile", 64)
        # Crash the origin just after its first frame can reach stack 1.
        sys_.machines[0].crash_at(0.0006)
        sys_.run(until=5.0)
        survivor_counts = [len(apps[i].got) for i in (1, 2, 3)]
        # all-or-nothing among survivors:
        assert len(set(survivor_counts)) == 1

    def test_no_relay_variant_loses_agreement_on_crash(self):
        """The ablation knob: without relays, a mid-broadcast crash can
        deliver to some but not all (best-effort broadcast).  We scan
        crash instants to land one inside the origin's send burst."""
        partial_seen = False
        for crash_us in (30, 50, 70, 90, 120, 160, 220, 300):
            sys_, apps, _ = build(n=4, seed=1, relay=False)
            apps[0].call(RBCAST_SERVICE, "broadcast", "fragile", 2000)
            sys_.machines[0].crash_at(crash_us * 1e-6)
            sys_.run(until=5.0)
            counts = {len(apps[i].got) for i in (1, 2, 3)}
            if len(counts) > 1:
                partial_seen = True
                break
        assert partial_seen, "expected a partial delivery without relays"

    def test_reliable_under_loss(self):
        sys_, apps, _ = build(loss=0.3, seed=7)
        for i in range(5):
            apps[i % 4].call(RBCAST_SERVICE, "broadcast", f"m{i}", 64)
        sys_.run(until=20.0)
        for a in apps:
            assert len(a.got) == 5
