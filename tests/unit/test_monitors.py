"""Unit tests: probes, counters, event logs."""

import pytest

from repro.sim import Counter, EventLog, PeriodicProbe


class TestPeriodicProbe:
    def test_samples_at_interval(self, sim):
        values = iter(range(100))
        probe = PeriodicProbe(sim, interval=0.5, fn=lambda: next(values))
        sim.schedule(2.0, lambda: None)
        sim.run(until=2.0)
        times = [t for t, _v in probe.samples]
        assert times == pytest.approx([0.0, 0.5, 1.0, 1.5, 2.0])

    def test_stop(self, sim):
        probe = PeriodicProbe(sim, interval=0.5, fn=lambda: 1)
        sim.schedule(0.6, probe.stop)
        sim.run(until=3.0)
        assert len(probe.samples) == 2  # t=0.0 and t=0.5

    def test_values_view(self, sim):
        probe = PeriodicProbe(sim, interval=1.0, fn=lambda: "v")
        sim.run(until=2.0)
        assert probe.values() == ["v", "v", "v"]

    def test_invalid_interval(self, sim):
        with pytest.raises(ValueError):
            PeriodicProbe(sim, interval=0.0, fn=lambda: 1)

    def test_probe_fires_after_normal_events(self, sim):
        order = []
        PeriodicProbe(sim, interval=1.0, fn=lambda: order.append("probe"))
        sim.schedule(1.0, lambda: order.append("event"))
        sim.run(until=1.0)
        assert order == ["probe", "event", "probe"]  # t=0 probe, then t=1


class TestCounter:
    def test_incr_and_get(self):
        c = Counter()
        c.incr("a")
        c.incr("a", 2)
        assert c.get("a") == 3

    def test_missing_key_is_zero(self):
        assert Counter().get("nope") == 0

    def test_as_dict_snapshot(self):
        c = Counter()
        c.incr("x")
        snap = c.as_dict()
        c.incr("x")
        assert snap == {"x": 1}


class TestEventLog:
    def test_record_and_filter(self, sim):
        log = EventLog(sim)
        log.record("switch", "v1")
        sim.schedule(1.0, log.record, "switch", "v2")
        sim.run()
        assert log.of_kind("switch") == [(0.0, "v1"), (1.0, "v2")]

    def test_first_and_last(self, sim):
        log = EventLog(sim)
        log.record("a", 1)
        log.record("b", 2)
        log.record("a", 3)
        assert log.first("a") == (0.0, 1)
        assert log.last("a") == (0.0, 3)
        assert log.first("zzz") is None

    def test_capacity(self, sim):
        log = EventLog(sim, capacity=2)
        for i in range(5):
            log.record("k", i)
        assert len(log.records) == 2
