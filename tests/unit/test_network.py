"""Unit tests: the simulated switched LAN."""

import pytest

from repro.errors import NetworkError, UnknownDestinationError
from repro.net import NetMessage, SimNetwork, SwitchedLan, estimate_payload_size
from repro.sim import ConstantLatency, Machine


def make_net(sim, n=3, **lan_kwargs):
    lan_kwargs.setdefault("latency", ConstantLatency(0.001))
    machines = [Machine(sim, i) for i in range(n)]
    return machines, SimNetwork(sim, machines, SwitchedLan(**lan_kwargs))


class TestMessage:
    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            NetMessage(0, 1, "p", -1)

    def test_msg_ids_unique(self):
        a = NetMessage(0, 1, "p", 10)
        b = NetMessage(0, 1, "p", 10)
        assert a.msg_id != b.msg_id


class TestEstimateSize:
    def test_scalars(self):
        assert estimate_payload_size(None) == 1
        assert estimate_payload_size(True) == 1
        assert estimate_payload_size(7) == 8
        assert estimate_payload_size(1.5) == 8

    def test_strings_and_bytes(self):
        assert estimate_payload_size("abc") == 7
        assert estimate_payload_size(b"abcd") == 8

    def test_containers_recursive(self):
        assert estimate_payload_size([1, 2]) == 4 + 16
        assert estimate_payload_size({"a": 1}) == 4 + 5 + 8

    def test_unknown_object_default(self):
        class X:
            __slots__ = ()

        assert estimate_payload_size(X(), default=99) == 99


class TestLanValidation:
    def test_bad_bandwidth(self):
        with pytest.raises(ValueError):
            SwitchedLan(bandwidth_bps=0)

    def test_bad_loss(self):
        with pytest.raises(ValueError):
            SwitchedLan(loss_rate=1.0)

    def test_transmission_time(self):
        lan = SwitchedLan(bandwidth_bps=100e6)
        assert lan.transmission_time(1250) == pytest.approx(1e-4)


class TestDelivery:
    def test_basic_delivery(self, sim):
        machines, net = make_net(sim)
        got = []
        net.attach(1, lambda m, t: got.append((m.payload, t)))
        net.send(NetMessage(0, 1, "hello", 1250))
        sim.run()
        # 1250B at 100Mb/s = 0.1ms tx + 1ms latency
        assert got == [("hello", pytest.approx(0.0011))]

    def test_nic_serialisation(self, sim):
        machines, net = make_net(sim)
        got = []
        net.attach(1, lambda m, t: got.append(t))
        for _ in range(3):
            net.send(NetMessage(0, 1, "x", 1250))
        sim.run()
        assert got == [pytest.approx(0.0011), pytest.approx(0.0012), pytest.approx(0.0013)]

    def test_nic_backlog_visible(self, sim):
        machines, net = make_net(sim)
        net.attach(1, lambda m, t: None)
        for _ in range(10):
            net.send(NetMessage(0, 1, "x", 12500))
        assert net.nic_backlog(0) == pytest.approx(0.01)

    def test_unknown_destination(self, sim):
        machines, net = make_net(sim)
        with pytest.raises(UnknownDestinationError):
            net.send(NetMessage(0, 99, "x", 10))

    def test_double_attach_rejected(self, sim):
        machines, net = make_net(sim)
        net.attach(0, lambda m, t: None)
        with pytest.raises(NetworkError):
            net.attach(0, lambda m, t: None)

    def test_unattached_drop_counted(self, sim):
        machines, net = make_net(sim)
        net.send(NetMessage(0, 1, "x", 10))
        sim.run()
        assert net.stats()["dropped_unattached"] == 1

    def test_send_local_loopback(self, sim):
        machines, net = make_net(sim)
        got = []
        net.attach(0, lambda m, t: got.append(t))
        net.send_local(NetMessage(0, 0, "x", 10))
        sim.run()
        assert got == [0.0]

    def test_send_local_requires_same_src_dst(self, sim):
        machines, net = make_net(sim)
        with pytest.raises(NetworkError):
            net.send_local(NetMessage(0, 1, "x", 10))


class TestImpairments:
    def test_loss(self, sim):
        machines, net = make_net(sim, loss_rate=0.5)
        got = []
        net.attach(1, lambda m, t: got.append(m))
        for _ in range(400):
            net.send(NetMessage(0, 1, "x", 10))
        sim.run()
        assert 120 < len(got) < 280  # ~200 expected
        assert net.stats()["dropped_loss"] == 400 - len(got)

    def test_duplication(self, sim):
        machines, net = make_net(sim, duplicate_rate=0.5)
        got = []
        net.attach(1, lambda m, t: got.append(m))
        for _ in range(200):
            net.send(NetMessage(0, 1, "x", 10))
        sim.run()
        assert len(got) > 220  # some duplicates happened

    def test_partition_blocks_and_heals(self, sim):
        machines, net = make_net(sim)
        got = []
        net.attach(1, lambda m, t: got.append(m))
        net.partition({0}, {1})
        assert net.is_partitioned(0, 1) and net.is_partitioned(1, 0)
        net.send(NetMessage(0, 1, "x", 10))
        sim.run()
        assert got == []
        net.heal()
        net.send(NetMessage(0, 1, "y", 10))
        sim.run()
        assert len(got) == 1


class TestCrashSemantics:
    def test_crashed_sender_sends_nothing(self, sim):
        machines, net = make_net(sim)
        got = []
        net.attach(1, lambda m, t: got.append(m))
        machines[0].crash()
        net.send(NetMessage(0, 1, "x", 10))
        sim.run()
        assert got == []

    def test_crash_in_flight_drops_delivery(self, sim):
        machines, net = make_net(sim)
        got = []
        net.attach(1, lambda m, t: got.append(m))
        net.send(NetMessage(0, 1, "x", 10))  # arrives ~1ms
        machines[1].crash_at(0.0005)
        sim.run()
        assert got == []
        assert net.stats()["dropped_crashed_receiver"] == 1


class TestLinkImpairments:
    def _attach_counter(self, net, mid):
        received = []
        net.attach(mid, lambda msg, t: received.append((msg, t)))
        return received

    def test_link_loss_one_drops_everything(self, sim):
        _machines, net = make_net(sim)
        received = self._attach_counter(net, 1)
        net.impair_link(0, 1, loss_rate=1.0)
        for _ in range(10):
            net.send(NetMessage(0, 1, "p", 100))
        sim.run()
        assert received == []
        assert net.stats()["dropped_loss"] == 10

    def test_link_loss_is_directional_when_asymmetric(self, sim):
        _machines, net = make_net(sim)
        got0 = self._attach_counter(net, 0)
        got1 = self._attach_counter(net, 1)
        net.impair_link(0, 1, loss_rate=1.0, symmetric=False)
        net.send(NetMessage(0, 1, "p", 100))
        net.send(NetMessage(1, 0, "p", 100))
        sim.run()
        assert got1 == [] and len(got0) == 1

    def test_link_duplication_delivers_twice(self, sim):
        _machines, net = make_net(sim)
        received = self._attach_counter(net, 1)
        net.impair_link(0, 1, duplicate_rate=1.0)
        net.send(NetMessage(0, 1, "p", 100))
        sim.run()
        assert len(received) == 2
        assert net.stats()["duplicated"] == 1

    def test_link_extra_latency_delays_arrival(self, sim):
        _machines, net = make_net(sim)
        received = self._attach_counter(net, 1)
        net.impair_link(0, 1, extra_latency=0.050)
        net.send(NetMessage(0, 1, "p", 100))
        sim.run()
        ((_msg, arrival),) = received
        assert arrival >= 0.050

    def test_reorder_holds_messages_back(self, sim):
        _machines, net = make_net(sim)
        received = self._attach_counter(net, 1)
        net.impair_link(0, 1, reorder_rate=1.0, reorder_delay=0.050)
        net.send(NetMessage(0, 1, "p", 100))
        sim.run()
        ((_msg, arrival),) = received
        assert arrival > 0.001  # held back beyond base latency + tx
        assert net.stats()["reordered"] == 1

    def test_clear_link_restores_delivery(self, sim):
        _machines, net = make_net(sim)
        received = self._attach_counter(net, 1)
        net.impair_link(0, 1, loss_rate=1.0)
        net.clear_link(0, 1)
        assert net.link_impairment(0, 1) is None
        net.send(NetMessage(0, 1, "p", 100))
        sim.run()
        assert len(received) == 1

    def test_clear_links_removes_all(self, sim):
        _machines, net = make_net(sim)
        net.impair_link(0, 1, loss_rate=0.5)
        net.impair_link(1, 2, loss_rate=0.5)
        net.clear_links()
        assert net.link_impairment(0, 1) is None
        assert net.link_impairment(1, 2) is None

    def test_link_rates_compose_with_lan_rates(self, sim):
        _machines, net = make_net(sim, loss_rate=0.5)
        self._attach_counter(net, 1)
        net.impair_link(0, 1, loss_rate=0.5)
        for _ in range(200):
            net.send(NetMessage(0, 1, "p", 10))
        sim.run()
        assert net.stats()["dropped_loss"] == 200  # 0.5 + 0.5 clamps to 1

    def test_invalid_impairment_rejected(self, sim):
        _machines, net = make_net(sim)
        with pytest.raises(NetworkError):
            net.impair_link(0, 1, loss_rate=1.5)
        with pytest.raises(NetworkError):
            net.impair_link(0, 1, reorder_delay=-1.0)
        with pytest.raises(UnknownDestinationError):
            net.impair_link(0, 99, loss_rate=0.1)

    def test_global_extra_latency_applies_everywhere(self, sim):
        _machines, net = make_net(sim)
        received = self._attach_counter(net, 2)
        net.extra_latency = 0.030
        net.send(NetMessage(0, 2, "p", 100))
        sim.run()
        ((_msg, arrival),) = received
        assert arrival >= 0.030

    def test_duplicate_pays_link_latency_too(self, sim):
        """A duplicate crosses the same impaired link as the original."""
        _machines, net = make_net(sim)
        received = self._attach_counter(net, 1)
        net.impair_link(0, 1, duplicate_rate=1.0, extra_latency=0.050)
        net.send(NetMessage(0, 1, "p", 100))
        sim.run()
        assert len(received) == 2
        assert all(arrival >= 0.050 for _msg, arrival in received)


class TestOneWayPartitions:
    def test_blocks_only_the_recorded_direction(self, sim):
        machines, net = make_net(sim)
        fwd, back = [], []
        net.attach(1, lambda m, t: fwd.append(m.payload))
        net.attach(0, lambda m, t: back.append(m.payload))
        net.partition_oneway({0}, {1})
        net.send(NetMessage(0, 1, "lost", 10))
        net.send(NetMessage(1, 0, "heard", 10))
        sim.run()
        assert fwd == []
        assert back == ["heard"]
        assert net.stats()["dropped_partition"] == 1

    def test_is_partitioned_is_directional(self, sim):
        machines, net = make_net(sim)
        net.partition_oneway({0, 2}, {1})
        assert net.is_partitioned(0, 1)
        assert net.is_partitioned(2, 1)
        assert not net.is_partitioned(1, 0)
        assert not net.is_partitioned(1, 2)
        assert not net.is_partitioned(0, 2)

    def test_heal_clears_oneway_too(self, sim):
        machines, net = make_net(sim)
        net.partition_oneway({0}, {1, 2})
        net.partition({0}, {2})
        net.heal()
        got = []
        net.attach(1, lambda m, t: got.append(m.payload))
        net.send(NetMessage(0, 1, "post-heal", 10))
        sim.run()
        assert got == ["post-heal"]

    def test_symmetric_partition_still_blocks_both_ways(self, sim):
        machines, net = make_net(sim)
        net.partition({0}, {1})
        assert net.is_partitioned(0, 1)
        assert net.is_partitioned(1, 0)
