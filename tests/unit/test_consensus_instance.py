"""Unit tests: the Chandra–Toueg per-instance state machine, driven directly.

These tests exercise the CT phases without any network: the test plays
coordinator/participant roles by injecting messages and inspecting the
frames the instance emits.
"""

import pytest

from repro.consensus.base import coordinator_of_round, majority
from repro.consensus.instance import ACK, ABORT, EST, NACK, PROP, CtInstance


class Harness:
    """Captures an instance's outgoing frames and decisions."""

    def __init__(self, n=3, my_rank=0, suspected=None):
        self.sent = []          # (dst, kind, round, value, ts)
        self.decided = []       # (value, size)
        self.suspected = set(suspected or ())
        self.instance = CtInstance(
            instance_id=0,
            group=tuple(range(n)),
            my_rank=my_rank,
            send_fn=lambda dst, kind, r, v, ts, size: self.sent.append(
                (dst, kind, r, v, ts)
            ),
            decide_fn=lambda v, size: self.decided.append(v),
            is_suspected=lambda rank: rank in self.suspected,
        )

    def frames(self, kind):
        return [f for f in self.sent if f[1] == kind]


class TestQuorumHelpers:
    @pytest.mark.parametrize("n,expected", [(1, 1), (2, 2), (3, 2), (4, 3), (5, 3), (7, 4)])
    def test_majority(self, n, expected):
        assert majority(n) == expected

    def test_majority_invalid(self):
        with pytest.raises(ValueError):
            majority(0)

    def test_rotating_coordinator(self):
        group = (0, 1, 2)
        assert [coordinator_of_round(group, r) for r in range(5)] == [0, 1, 2, 0, 1]


class TestHappyPath:
    def test_propose_sends_estimate_to_round0_coordinator(self):
        h = Harness(n=3, my_rank=1)
        h.instance.propose("v1", 10)
        assert h.frames(EST) == [(0, EST, 0, "v1", 0)]

    def test_coordinator_proposes_highest_ts(self):
        h = Harness(n=3, my_rank=0)
        h.instance.propose("mine", 10)       # est (mine, ts=0) to self
        h.instance.on_message(0, EST, 0, "mine", 0, 10)
        # second estimate with a higher timestamp must win
        h.instance.on_message(1, EST, 0, "fresh", 1, 10)
        props = h.frames(PROP)
        assert len(props) == 3  # to every group member
        assert all(v == "fresh" for (_d, _k, _r, v, _ts) in props)

    def test_coordinator_waits_for_quorum(self):
        h = Harness(n=5, my_rank=0)
        h.instance.propose("mine", 10)
        h.instance.on_message(0, EST, 0, "mine", 0, 10)
        h.instance.on_message(1, EST, 0, "other", 0, 10)
        assert h.frames(PROP) == []  # 2 < majority(5)=3
        h.instance.on_message(2, EST, 0, "third", 0, 10)
        assert len(h.frames(PROP)) == 5

    def test_participant_acks_proposal_and_adopts(self):
        h = Harness(n=3, my_rank=1)
        h.instance.propose("mine", 10)
        h.instance.on_message(0, PROP, 0, "coord-pick", 0, 10)
        assert h.frames(ACK) == [(0, ACK, 0, None, 0)]
        assert h.instance.estimate == "coord-pick"
        assert h.instance.ts == 0

    def test_coordinator_decides_on_all_ack_quorum(self):
        h = Harness(n=3, my_rank=0)
        h.instance.propose("v", 10)
        h.instance.on_message(0, EST, 0, "v", 0, 10)
        h.instance.on_message(1, EST, 0, "v", 0, 10)
        h.instance.on_message(0, ACK, 0, None, 0, 0)
        h.instance.on_message(1, ACK, 0, None, 0, 0)
        assert h.decided == ["v"]

    def test_duplicate_acks_ignored(self):
        h = Harness(n=5, my_rank=0)
        h.instance.propose("v", 10)
        for r in range(3):
            h.instance.on_message(r, EST, 0, "v", 0, 10)
        h.instance.on_message(1, ACK, 0, None, 0, 0)
        h.instance.on_message(1, ACK, 0, None, 0, 0)
        h.instance.on_message(1, ACK, 0, None, 0, 0)
        assert h.decided == []  # one sender cannot fill the quorum


class TestFailurePath:
    def test_suspected_coordinator_gets_instant_nack(self):
        h = Harness(n=3, my_rank=1, suspected={0})
        h.instance.propose("v", 10)
        assert h.frames(NACK) == [(0, NACK, 0, None, 0)]
        # advanced to round 1 and sent the estimate to coordinator 1 (self)
        assert (1, EST, 1, "v", 0) in h.frames(EST)

    def test_suspicion_after_ack_advances_round(self):
        h = Harness(n=3, my_rank=1)
        h.instance.propose("v", 10)
        h.instance.on_message(0, PROP, 0, "pick", 0, 10)
        assert h.instance.round == 0
        h.instance.on_suspect(0)
        assert h.instance.round == 1
        # no NACK: we already replied ack in round 0
        assert h.frames(NACK) == []

    def test_nack_in_quorum_triggers_abort(self):
        h = Harness(n=3, my_rank=0)
        h.instance.propose("v", 10)
        h.instance.on_message(0, EST, 0, "v", 0, 10)
        h.instance.on_message(1, EST, 0, "v", 0, 10)
        h.instance.on_message(0, ACK, 0, None, 0, 0)
        h.instance.on_message(1, NACK, 0, None, 0, 0)
        assert h.decided == []
        aborts = h.frames(ABORT)
        assert {d for (d, _k, _r, _v, _t) in aborts} == {1, 2}

    def test_abort_advances_round(self):
        h = Harness(n=3, my_rank=2)
        h.instance.propose("v", 10)
        assert h.instance.round == 0
        h.instance.on_message(0, ABORT, 0, None, 0, 0)
        assert h.instance.round == 1

    def test_higher_round_proposal_catches_up(self):
        h = Harness(n=3, my_rank=2)
        h.instance.propose("v", 10)
        h.instance.on_message(1, PROP, 1, "late-pick", 1, 10)
        assert h.instance.round == 1
        assert h.instance.estimate == "late-pick"
        assert (1, ACK, 1, None, 0) in h.frames(ACK)

    def test_locked_value_carried_to_next_round(self):
        """CT safety: after a majority acks value v in round r, every
        later coordinator quorum contains a ts=r estimate of v."""
        h = Harness(n=3, my_rank=1)
        h.instance.propose("initial", 10)
        h.instance.on_message(0, PROP, 0, "locked", 0, 10)  # adopt, ts=0
        h.instance.on_suspect(0)  # advance to round 1; I coordinate it
        h.instance.on_message(1, EST, 1, "locked", 0, 10)
        h.instance.on_message(2, EST, 1, "stale", 0, 10)
        props = h.frames(PROP)
        # tie on ts: lowest rank wins; rank1 carries "locked"
        assert all(v == "locked" for (_d, _k, r, v, _t) in props if r == 1)


class TestDecidedTermination:
    def test_no_activity_after_decide(self):
        h = Harness(n=3, my_rank=1)
        h.instance.propose("v", 10)
        h.instance.on_decided("winner")
        before = len(h.sent)
        h.instance.on_message(0, PROP, 0, "pick", 0, 10)
        h.instance.on_suspect(0)
        assert len(h.sent) == before
        assert h.instance.decided
        assert h.instance.decision == "winner"
