"""Unit tests: the distributed barrier (Graceful Adaptation substrate)."""


from repro.baselines import BARRIER_SERVICE, BarrierModule
from repro.kernel import Module, System
from repro.net import Rp2pModule, SimNetwork, SwitchedLan, UdpModule
from repro.sim import ConstantLatency


class Waiter(Module):
    REQUIRES = (BARRIER_SERVICE,)
    PROTOCOL = "waiter"

    def __init__(self, stack):
        super().__init__(stack)
        self.passed = []
        self.subscribe(
            BARRIER_SERVICE, "passed", lambda bid: self.passed.append((bid, self.now))
        )


def build(n=3):
    sys_ = System(n=n, seed=2)
    net = SimNetwork(
        sys_.sim, sys_.machines, SwitchedLan(latency=ConstantLatency(0.0002))
    )
    group = list(range(n))
    waiters = []
    for st in sys_.stacks:
        st.add_module(UdpModule(st, net))
        st.add_module(Rp2pModule(st))
        st.add_module(BarrierModule(st, group))
        w = Waiter(st)
        st.add_module(w)
        waiters.append(w)
    return sys_, waiters


class TestBarrier:
    def test_nobody_passes_until_all_enter(self):
        sys_, waiters = build()
        waiters[0].call(BARRIER_SERVICE, "enter", "b1")
        waiters[1].call(BARRIER_SERVICE, "enter", "b1")
        sys_.run(until=1.0)
        assert all(w.passed == [] for w in waiters)

    def test_all_pass_after_last_arrival(self):
        sys_, waiters = build()
        for i, w in enumerate(waiters):
            sys_.sim.schedule(0.1 * i, w.call, BARRIER_SERVICE, "enter", "b1")
        sys_.run(until=2.0)
        assert all([bid for bid, _t in w.passed] == ["b1"] for w in waiters)
        # nobody passes before the last (t=0.2) arrival:
        assert all(t >= 0.2 for w in waiters for _b, t in w.passed)

    def test_independent_barriers(self):
        sys_, waiters = build()
        for w in waiters:
            w.call(BARRIER_SERVICE, "enter", "b1")
            w.call(BARRIER_SERVICE, "enter", "b2")
        sys_.run(until=2.0)
        for w in waiters:
            assert {bid for bid, _t in w.passed} == {"b1", "b2"}

    def test_reentry_of_released_barrier_is_ignored(self):
        sys_, waiters = build()
        for w in waiters:
            w.call(BARRIER_SERVICE, "enter", "b1")
        sys_.run(until=1.0)
        waiters[0].call(BARRIER_SERVICE, "enter", "b1")
        sys_.run(until=2.0)
        assert [bid for bid, _t in waiters[0].passed] == ["b1"]
