"""Unit tests: switch-plan triggers (time / deliveries / fault detection)."""

import pytest

from repro.errors import ScenarioError
from repro.experiments import (
    GroupCommConfig,
    PROTOCOL_CT,
    PROTOCOL_SEQ,
    build_group_comm_system,
)
from repro.scenarios import (
    SwitchAfterDeliveries,
    SwitchAt,
    SwitchOnFault,
    SwitchPlan,
)
from repro.sim import FaultInjector


def build(n=3, seed=3, load=60.0, stop=3.0):
    cfg = GroupCommConfig(n=n, seed=seed, load_msgs_per_sec=load, load_stop=stop)
    gcs = build_group_comm_system(cfg)
    injector = FaultInjector(
        gcs.system.sim, gcs.system.machines, network=gcs.network, name="t"
    )
    return gcs, injector


class TestSwitchAt:
    def test_fires_at_time_and_records(self):
        gcs, inj = build()
        plan = SwitchPlan([SwitchAt(protocol=PROTOCOL_CT, at=1.5)])
        plan.arm(gcs, inj)
        gcs.run(until=4.0)
        assert len(plan.fired) == 1
        fired = plan.fired[0]
        assert fired["trigger"] == "SwitchAt"
        assert fired["time"] == pytest.approx(1.5)
        assert gcs.manager.module(0).seq_number == 1

    def test_falls_back_to_alive_stack(self):
        gcs, inj = build(n=3)
        inj.crash_at(1.0, 0)
        plan = SwitchPlan([SwitchAt(protocol=PROTOCOL_CT, at=1.5, from_stack=0)])
        plan.arm(gcs, inj)
        gcs.run(until=4.0)
        gcs.run_to_quiescence()
        assert plan.fired[0]["from_stack"] == 1
        assert gcs.manager.module(1).seq_number == 1


class TestSwitchAfterDeliveries:
    def test_fires_after_count(self):
        gcs, inj = build(load=100.0)
        plan = SwitchPlan(
            [SwitchAfterDeliveries(protocol=PROTOCOL_SEQ, count=30, on_stack=0)]
        )
        plan.arm(gcs, inj)
        gcs.run(until=5.0)
        gcs.run_to_quiescence()
        assert len(plan.fired) == 1
        # The trigger saw the 30th delivery strictly before the switch fired.
        assert gcs.log.delivered_count(0) >= 30
        assert gcs.manager.current_protocols()[0] == PROTOCOL_SEQ

    def test_never_fires_when_count_unreached(self):
        gcs, inj = build(load=60.0, stop=1.0)
        plan = SwitchPlan(
            [SwitchAfterDeliveries(protocol=PROTOCOL_SEQ, count=10_000)]
        )
        plan.arm(gcs, inj)
        gcs.run(until=3.0)
        assert plan.fired == []
        assert gcs.manager.module(0).seq_number == 0


class TestSwitchOnFault:
    def test_fires_after_fault_with_delay(self):
        gcs, inj = build(n=5)
        inj.crash_at(1.0, 4)
        plan = SwitchPlan(
            [SwitchOnFault(protocol=PROTOCOL_SEQ, fault_index=0, delay=0.2)]
        )
        plan.arm(gcs, inj)
        gcs.run(until=5.0)
        gcs.run_to_quiescence()
        assert len(plan.fired) == 1
        assert plan.fired[0]["time"] == pytest.approx(1.2)
        assert gcs.manager.current_protocols()[0] == PROTOCOL_SEQ

    def test_only_designated_fault_index_triggers(self):
        gcs, inj = build(n=5)
        inj.crash_at(1.0, 4)
        plan = SwitchPlan(
            [SwitchOnFault(protocol=PROTOCOL_SEQ, fault_index=1, delay=0.1)]
        )
        plan.arm(gcs, inj)
        gcs.run(until=4.0)
        assert plan.fired == []


class TestPlanValidation:
    def test_plan_requires_manager(self):
        cfg = GroupCommConfig(n=3, seed=1, with_repl_layer=False, load_stop=1.0)
        gcs = build_group_comm_system(cfg)
        inj = FaultInjector(gcs.system.sim, gcs.system.machines)
        plan = SwitchPlan([SwitchAt(protocol=PROTOCOL_CT, at=1.0)])
        with pytest.raises(ScenarioError):
            plan.arm(gcs, inj)

    def test_empty_plan_is_fine_without_manager(self):
        cfg = GroupCommConfig(n=3, seed=1, with_repl_layer=False, load_stop=1.0)
        gcs = build_group_comm_system(cfg)
        inj = FaultInjector(gcs.system.sim, gcs.system.machines)
        SwitchPlan([]).arm(gcs, inj)  # no-op
