"""Unit tests: switch-plan triggers (time / deliveries / fault detection)."""

import pytest

from repro.errors import ScenarioError
from repro.experiments import (
    GroupCommConfig,
    PROTOCOL_CT,
    PROTOCOL_SEQ,
    build_group_comm_system,
)
from repro.scenarios import (
    SwitchAfterDeliveries,
    SwitchAt,
    SwitchIfStalled,
    SwitchOnFault,
    SwitchPlan,
)
from repro.sim import FaultInjector


def build(n=3, seed=3, load=60.0, stop=3.0):
    cfg = GroupCommConfig(n=n, seed=seed, load_msgs_per_sec=load, load_stop=stop)
    gcs = build_group_comm_system(cfg)
    injector = FaultInjector(
        gcs.system.sim, gcs.system.machines, network=gcs.network, name="t"
    )
    return gcs, injector


class TestSwitchAt:
    def test_fires_at_time_and_records(self):
        gcs, inj = build()
        plan = SwitchPlan([SwitchAt(protocol=PROTOCOL_CT, at=1.5)])
        plan.arm(gcs, inj)
        gcs.run(until=4.0)
        assert len(plan.fired) == 1
        fired = plan.fired[0]
        assert fired["trigger"] == "SwitchAt"
        assert fired["time"] == pytest.approx(1.5)
        assert gcs.manager.module(0).seq_number == 1

    def test_falls_back_to_alive_stack(self):
        gcs, inj = build(n=3)
        inj.crash_at(1.0, 0)
        plan = SwitchPlan([SwitchAt(protocol=PROTOCOL_CT, at=1.5, from_stack=0)])
        plan.arm(gcs, inj)
        gcs.run(until=4.0)
        gcs.run_to_quiescence()
        assert plan.fired[0]["from_stack"] == 1
        assert gcs.manager.module(1).seq_number == 1


class TestSwitchAfterDeliveries:
    def test_fires_after_count(self):
        gcs, inj = build(load=100.0)
        plan = SwitchPlan(
            [SwitchAfterDeliveries(protocol=PROTOCOL_SEQ, count=30, on_stack=0)]
        )
        plan.arm(gcs, inj)
        gcs.run(until=5.0)
        gcs.run_to_quiescence()
        assert len(plan.fired) == 1
        # The trigger saw the 30th delivery strictly before the switch fired.
        assert gcs.log.delivered_count(0) >= 30
        assert gcs.manager.current_protocols()[0] == PROTOCOL_SEQ

    def test_never_fires_when_count_unreached(self):
        gcs, inj = build(load=60.0, stop=1.0)
        plan = SwitchPlan(
            [SwitchAfterDeliveries(protocol=PROTOCOL_SEQ, count=10_000)]
        )
        plan.arm(gcs, inj)
        gcs.run(until=3.0)
        assert plan.fired == []
        assert gcs.manager.module(0).seq_number == 0


class TestSwitchOnFault:
    def test_fires_after_fault_with_delay(self):
        gcs, inj = build(n=5)
        inj.crash_at(1.0, 4)
        plan = SwitchPlan(
            [SwitchOnFault(protocol=PROTOCOL_SEQ, fault_index=0, delay=0.2)]
        )
        plan.arm(gcs, inj)
        gcs.run(until=5.0)
        gcs.run_to_quiescence()
        assert len(plan.fired) == 1
        assert plan.fired[0]["time"] == pytest.approx(1.2)
        assert gcs.manager.current_protocols()[0] == PROTOCOL_SEQ

    def test_only_designated_fault_index_triggers(self):
        gcs, inj = build(n=5)
        inj.crash_at(1.0, 4)
        plan = SwitchPlan(
            [SwitchOnFault(protocol=PROTOCOL_SEQ, fault_index=1, delay=0.1)]
        )
        plan.arm(gcs, inj)
        gcs.run(until=4.0)
        assert plan.fired == []


class TestPlanValidation:
    def test_plan_requires_manager(self):
        cfg = GroupCommConfig(n=3, seed=1, with_repl_layer=False, load_stop=1.0)
        gcs = build_group_comm_system(cfg)
        inj = FaultInjector(gcs.system.sim, gcs.system.machines)
        plan = SwitchPlan([SwitchAt(protocol=PROTOCOL_CT, at=1.0)])
        with pytest.raises(ScenarioError):
            plan.arm(gcs, inj)

    def test_empty_plan_is_fine_without_manager(self):
        cfg = GroupCommConfig(n=3, seed=1, with_repl_layer=False, load_stop=1.0)
        gcs = build_group_comm_system(cfg)
        inj = FaultInjector(gcs.system.sim, gcs.system.machines)
        SwitchPlan([]).arm(gcs, inj)  # no-op


class TestSwitchAfterSwitch:
    def test_completed_phase_pipelines_windows(self):
        """The chained change fires at the first completion of v1, so the
        v2 window opens while the v1 window is still closing elsewhere."""
        from repro.scenarios import SwitchAfterSwitch

        gcs, inj = build(n=5, load=80.0, stop=4.0)
        plan = SwitchPlan([
            SwitchAt(protocol=PROTOCOL_SEQ, at=1.5, from_stack=0),
            SwitchAfterSwitch(protocol=PROTOCOL_CT, version=1, phase="completed"),
        ])
        plan.arm(gcs, inj)
        gcs.run(until=5.0)
        gcs.run_to_quiescence()
        assert len(plan.fired) == 2
        chained = plan.fired[1]
        assert chained["trigger"] == "SwitchAfterSwitch"
        assert chained["after_version"] == 1
        assert chained["phase"] == "completed"
        w1, w2 = gcs.manager.window(1), gcs.manager.window(2)
        assert w2.start < w1.end          # requested inside the open window
        assert w2.overlap_with_prev > 0.0  # the windows genuinely overlap
        assert gcs.manager.chain_metrics()["pipelined"] is True

    def test_started_phase_fires_from_starting_stack(self):
        from repro.scenarios import SwitchAfterSwitch

        gcs, inj = build(n=3, load=60.0, stop=4.0)
        plan = SwitchPlan([
            SwitchAt(protocol=PROTOCOL_SEQ, at=1.5, from_stack=0),
            SwitchAfterSwitch(protocol=PROTOCOL_CT, version=1, phase="started"),
        ])
        plan.arm(gcs, inj)
        gcs.run(until=5.0)
        gcs.run_to_quiescence()
        assert len(plan.fired) == 2
        assert gcs.manager.module(0).seq_number == 2
        # The chained request was issued the instant v1 started anywhere:
        # strictly before any stack completed it.
        assert plan.fired[1]["time"] < gcs.manager.window(1).end

    def test_closed_phase_is_back_to_back(self):
        from repro.scenarios import SwitchAfterSwitch

        gcs, inj = build(n=3, load=60.0, stop=4.0)
        plan = SwitchPlan([
            SwitchAt(protocol=PROTOCOL_SEQ, at=1.5, from_stack=0),
            SwitchAfterSwitch(protocol=PROTOCOL_CT, version=1, phase="closed",
                              delay=0.01),
        ])
        plan.arm(gcs, inj)
        gcs.run(until=5.0)
        gcs.run_to_quiescence()
        assert len(plan.fired) == 2
        w1, w2 = gcs.manager.window(1), gcs.manager.window(2)
        assert w2.start >= w1.end           # strictly after the window closed
        assert w2.overlap_with_prev == 0.0

    def test_invalid_phase_and_version_rejected(self):
        from repro.scenarios import SwitchAfterSwitch

        with pytest.raises(ScenarioError):
            SwitchAfterSwitch(protocol=PROTOCOL_CT, phase="midway")
        with pytest.raises(ScenarioError):
            SwitchAfterSwitch(protocol=PROTOCOL_CT, version=0)


class TestClosedPhaseUnderCrash:
    def test_straggler_crash_closes_the_window_and_fires_the_chain(self):
        """A window whose last straggler *crashes* (instead of completing)
        still closes — the chained switch must fire, not stall forever."""
        from repro.scenarios import SwitchAfterSwitch

        gcs, inj = build(n=3, load=60.0, stop=5.0)
        # Stack 2 is partitioned away before the switch: it never sees
        # the change, so it can never complete v1.  Crashing it later is
        # then the only event that closes the v1 window.
        inj.partition_at(1.0, (0, 1), (2,))
        inj.crash_at(3.0, 2)
        plan = SwitchPlan([
            SwitchAt(protocol=PROTOCOL_SEQ, at=1.5, from_stack=0),
            SwitchAfterSwitch(protocol=PROTOCOL_CT, version=1, phase="closed"),
        ])
        plan.arm(gcs, inj)
        gcs.run(until=6.0)
        gcs.run_to_quiescence(exempt=(2,))
        assert len(plan.fired) == 2
        # The chain fired at (or after) the crash that closed the window.
        assert plan.fired[1]["time"] >= 3.0
        for s in (0, 1):
            assert gcs.manager.module(s).seq_number == 2


class TestOverlapClamping:
    def test_overlap_clamped_to_own_window_end(self):
        """A straggler closing the *previous* window late must not
        overstate the overlap beyond this window's own open interval."""
        from repro.dpu import ReplacementWindow

        w1 = ReplacementWindow(version=1, protocol="p", requested_at=1.0)
        w1.completed = {0: 2.0, 1: 10.0}     # straggler closes v1 at t=10
        w2 = ReplacementWindow(version=2, protocol="p", requested_at=1.5, prev=w1)
        w2.completed = {0: 1.9, 1: 2.0}      # v2 itself closed at t=2
        assert w2.overlap_with_prev == pytest.approx(0.5)  # min(10,2) - 1.5
        # Open-ended current window falls back to the previous end.
        w3 = ReplacementWindow(version=3, protocol="p", requested_at=1.5, prev=w1)
        assert w3.overlap_with_prev == pytest.approx(8.5)


class TestClosedPhaseFullOutage:
    def test_full_outage_does_not_vacuously_close_windows(self):
        """With every machine down, replacement_complete is vacuously
        true; the closed announcement must NOT fire (it would consume
        one-shot chained triggers with nobody able to act on them)."""
        gcs, inj = build(n=3, load=60.0, stop=3.0)
        plan = SwitchPlan([SwitchAt(protocol=PROTOCOL_SEQ, at=1.5, from_stack=0)])
        plan.arm(gcs, inj)
        closed = []
        gcs.manager.on_version_closed.append(
            lambda version, prot, at: closed.append(version)
        )
        gcs.run(until=1.505)  # the switch is in flight, window open
        for m in gcs.system.machines:
            m.crash()
        assert closed == []  # vacuous closure suppressed


class TestSwitchIfStalled:
    def test_fires_when_convergence_exceeds_timeout(self):
        # Module creation takes 0.5 s: 0.1 s after v1 starts, the window
        # is provably still open, so the stall escape must fire.
        cfg = GroupCommConfig(n=3, seed=3, load_msgs_per_sec=60.0,
                              load_stop=3.0, creation_cost=0.5)
        gcs = build_group_comm_system(cfg)
        inj = FaultInjector(gcs.system.sim, gcs.system.machines,
                            network=gcs.network, name="t")
        plan = SwitchPlan([
            SwitchAt(protocol=PROTOCOL_CT, at=1.0),
            SwitchIfStalled(protocol=PROTOCOL_CT, version=1, timeout=0.1),
        ])
        plan.arm(gcs, inj)
        gcs.run(until=6.0)
        gcs.run_to_quiescence()
        assert len(plan.fired) == 2
        stalled = plan.fired[1]
        assert stalled["trigger"] == "SwitchIfStalled"
        assert stalled["stalled_version"] == 1
        assert stalled["timeout"] == pytest.approx(0.1)
        assert stalled["time"] == pytest.approx(1.1, abs=0.01)
        assert gcs.manager.module(0).seq_number == 2  # the escape switched

    def test_never_fires_when_window_closes_in_time(self):
        gcs, inj = build()  # default creation cost: ~5 ms per module
        plan = SwitchPlan([
            SwitchAt(protocol=PROTOCOL_CT, at=1.0),
            SwitchIfStalled(protocol=PROTOCOL_CT, version=1, timeout=1.0),
        ])
        plan.arm(gcs, inj)
        gcs.run(until=4.0)
        gcs.run_to_quiescence()
        assert [f["trigger"] for f in plan.fired] == ["SwitchAt"]
        assert gcs.manager.module(0).seq_number == 1  # no second switch

    def test_validation(self):
        with pytest.raises(ScenarioError):
            SwitchIfStalled(protocol=PROTOCOL_CT, version=0)
        with pytest.raises(ScenarioError):
            SwitchIfStalled(protocol=PROTOCOL_CT, timeout=0.0)
