"""Unit tests: latency models."""

import numpy as np
import pytest

from repro.sim.latency import (
    ConstantLatency,
    EmpiricalLatency,
    ExponentialLatency,
    LogNormalLatency,
    ShiftedLatency,
    UniformLatency,
    lan_latency,
)

RNG = np.random.default_rng(42)

ALL_MODELS = [
    ConstantLatency(0.001),
    UniformLatency(0.001, 0.002),
    ExponentialLatency(mean_tail=0.001, floor=0.0005),
    LogNormalLatency(tail_mean=0.001, sigma=0.5, floor=0.0002),
    EmpiricalLatency([0.001, 0.002, 0.003]),
    ShiftedLatency(ConstantLatency(0.001), shift=0.0005),
    lan_latency(),
]


@pytest.mark.parametrize("model", ALL_MODELS, ids=lambda m: type(m).__name__)
class TestAllModels:
    def test_samples_non_negative(self, model):
        rng = np.random.default_rng(1)
        assert all(model.sample(rng) >= 0 for _ in range(200))

    def test_samples_at_least_floor(self, model):
        rng = np.random.default_rng(2)
        floor = getattr(model, "floor", 0.0) or getattr(model, "shift", 0.0) or 0.0
        assert all(model.sample(rng) >= floor for _ in range(200))

    def test_empirical_mean_close_to_declared(self, model):
        rng = np.random.default_rng(3)
        samples = [model.sample(rng) for _ in range(4000)]
        assert np.mean(samples) == pytest.approx(model.mean(), rel=0.15)


class TestConstant:
    def test_exact(self):
        assert ConstantLatency(0.005).sample(RNG) == 0.005

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ConstantLatency(-1.0)


class TestUniform:
    def test_bounds(self):
        m = UniformLatency(0.001, 0.003)
        rng = np.random.default_rng(4)
        for _ in range(200):
            assert 0.001 <= m.sample(rng) <= 0.003

    def test_invalid_bounds_rejected(self):
        with pytest.raises(ValueError):
            UniformLatency(0.003, 0.001)
        with pytest.raises(ValueError):
            UniformLatency(-0.001, 0.001)


class TestExponential:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExponentialLatency(mean_tail=-1.0)


class TestLogNormal:
    def test_validation(self):
        with pytest.raises(ValueError):
            LogNormalLatency(tail_mean=0.0)
        with pytest.raises(ValueError):
            LogNormalLatency(tail_mean=0.001, sigma=0.0)
        with pytest.raises(ValueError):
            LogNormalLatency(tail_mean=0.001, floor=-0.1)


class TestEmpirical:
    def test_resamples_from_given_set(self):
        m = EmpiricalLatency([0.001, 0.002])
        rng = np.random.default_rng(5)
        assert {m.sample(rng) for _ in range(100)} <= {0.001, 0.002}

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalLatency([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            EmpiricalLatency([0.001, -0.002])


class TestShifted:
    def test_mean_composes(self):
        m = ShiftedLatency(ConstantLatency(0.001), shift=0.002)
        assert m.mean() == pytest.approx(0.003)

    def test_negative_shift_rejected(self):
        with pytest.raises(ValueError):
            ShiftedLatency(ConstantLatency(0.001), shift=-0.1)
