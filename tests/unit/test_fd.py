"""Unit tests: failure detectors."""

import pytest

from repro.kernel import Module, System, WellKnown
from repro.net import SimNetwork, SwitchedLan, UdpModule
from repro.fd import HeartbeatFd, OracleFd, PerfectFd
from repro.sim import ConstantLatency, ms


class FdWatcher(Module):
    REQUIRES = (WellKnown.FD,)
    PROTOCOL = "fd-watcher"

    def __init__(self, stack):
        super().__init__(stack)
        self.events = []
        self.subscribe(WellKnown.FD, "suspect", lambda r: self.events.append(("suspect", r, self.now)))
        self.subscribe(WellKnown.FD, "restore", lambda r: self.events.append(("restore", r, self.now)))


def build_hb(n=3, seed=9, **fd_kwargs):
    sys_ = System(n=n, seed=seed)
    net = SimNetwork(sys_.sim, sys_.machines, SwitchedLan(latency=ConstantLatency(0.0002)))
    fds, watchers = [], []
    group = list(range(n))
    for st in sys_.stacks:
        st.add_module(UdpModule(st, net))
        fd = HeartbeatFd(st, group, **fd_kwargs)
        st.add_module(fd)
        w = FdWatcher(st)
        st.add_module(w)
        fds.append(fd)
        watchers.append(w)
    return sys_, fds, watchers


class TestHeartbeatFd:
    def test_no_suspicions_in_calm_run(self):
        sys_, fds, watchers = build_hb()
        sys_.run(until=3.0)
        assert all(not fd.suspects() for fd in fds)
        assert all(w.events == [] for w in watchers)

    def test_crashed_peer_eventually_suspected_by_all(self):
        sys_, fds, watchers = build_hb()
        sys_.machines[2].crash_at(1.0)
        sys_.run(until=3.0)
        for i in (0, 1):
            assert 2 in fds[i].suspects()
            assert ("suspect", 2) in [(k, r) for k, r, _t in watchers[i].events]

    def test_suspicion_latency_bounded_by_timeout_plus_period(self):
        sys_, fds, watchers = build_hb(timeout=ms(200), period=ms(50))
        sys_.machines[2].crash_at(1.0)
        sys_.run(until=3.0)
        t_suspect = [t for k, r, t in watchers[0].events if k == "suspect" and r == 2][0]
        assert 1.0 < t_suspect < 1.0 + 0.200 + 2 * 0.050 + 0.01

    def test_suspicion_is_permanent_for_crashed_peer(self):
        sys_, fds, watchers = build_hb()
        sys_.machines[2].crash_at(0.5)
        sys_.run(until=5.0)
        restores = [e for e in watchers[0].events if e[0] == "restore"]
        assert restores == []

    def test_queries(self):
        sys_, fds, watchers = build_hb()
        sys_.machines[1].crash_at(0.5)
        sys_.run(until=2.0)
        stack0 = sys_.stack(0)
        assert stack0.query(WellKnown.FD, "is_suspected", 1)
        assert 1 in stack0.query(WellKnown.FD, "suspects")

    def test_adaptive_timeout_grows_after_false_suspicion(self):
        # Partition briefly so heartbeats are lost, then heal: the FD
        # wrongly suspects, repents, and raises that peer's timeout.
        sys_, fds, watchers = build_hb(timeout=ms(150), period=ms(40))
        # grab the network from the udp module
        udp = next(m for m in sys_.stack(0).modules.values() if m.protocol == "udp")
        network = udp.network
        sys_.sim.schedule(1.0, network.partition, {0}, {1, 2})
        sys_.sim.schedule(1.5, network.heal)
        sys_.run(until=4.0)
        fd0 = fds[0]
        assert fd0.false_suspicions > 0
        assert fd0.current_timeout(1) > ms(150)
        assert not fd0.suspects()  # repented after heal

    def test_validation(self):
        sys_ = System(n=2, seed=0)
        with pytest.raises(ValueError):
            HeartbeatFd(sys_.stack(0), [0, 1], period=0.0)
        with pytest.raises(ValueError):
            HeartbeatFd(sys_.stack(0), [0, 1], backoff=0.5)


class TestHeartbeatRestart:
    """Crash-recovery: epoch-carrying heartbeats and tick re-arming."""

    def test_recovered_peer_is_restored_without_backoff_penalty(self):
        sys_, fds, watchers = build_hb()
        sys_.machines[2].crash_at(1.0)
        sys_.machines[2].recover_at(2.0)
        sys_.run(until=4.0)
        fd0 = fds[0]
        assert 2 not in fd0.suspects()  # the restart lifted the suspicion
        assert fd0.restarts_observed >= 1
        # A genuine restart is not a false suspicion: no adaptive backoff.
        assert fd0.false_suspicions == 0
        assert fd0.current_timeout(2) == fd0.initial_timeout
        events = [(k, r) for k, r, _t in watchers[0].events]
        assert events == [("suspect", 2), ("restore", 2)]

    def test_restarted_detector_rearms_its_tick(self):
        sys_, fds, watchers = build_hb()
        sys_.machines[0].crash_at(1.0)
        sys_.machines[0].recover_at(1.5)
        sys_.run(until=4.0)
        # The restarted detector keeps monitoring: it neither stalls nor
        # suspects the peers that kept running.
        assert fds[0].suspects() == frozenset()
        # And the peers lifted their (correct) suspicion of stack 0.
        assert all(0 not in fds[i].suspects() for i in (1, 2))

    def test_stale_incarnation_heartbeat_is_dropped(self):
        """Satellite regression: a heartbeat from a dead incarnation must
        not falsely restore (or refresh) a suspected peer."""
        sys_, fds, watchers = build_hb()
        fd0, fd2 = fds[0], fds[2]
        sys_.run(until=0.5)
        # Learn epoch 1 for peer 2 first, then replay an epoch-0 frame.
        fd0._on_udp(2, ("fd.hb", 2, 1), 12)
        dropped_before = fd0.stale_heartbeats_dropped
        heard_before = fd0._last_heard[2]
        fd0._on_udp(2, ("fd.hb", 2, 0), 12)
        assert fd0.stale_heartbeats_dropped == dropped_before + 1
        assert fd0._last_heard[2] == heard_before  # liveness not refreshed

    def test_dynamically_joined_peer_does_not_keyerror(self):
        """Satellite regression: ``_tick``/``current_timeout`` indexed the
        per-peer tables by rank and blew up for peers added after
        construction — exactly what a GM re-join produces."""
        sys_ = System(n=4, seed=11)
        net = SimNetwork(
            sys_.sim, sys_.machines, SwitchedLan(latency=ConstantLatency(0.0002))
        )
        fds = []
        for st in sys_.stacks:
            st.add_module(UdpModule(st, net))
            # Stack 3 is unknown to everyone at construction time.
            fd = HeartbeatFd(st, [0, 1, 2])
            st.add_module(fd)
            fds.append(fd)
        # current_timeout on an unknown rank: default, not KeyError.
        assert fds[0].current_timeout(3) == fds[0].initial_timeout
        fds[0].watch(3)
        assert 3 in fds[0].peers
        sys_.run(until=1.0)
        # Stack 3's heartbeats auto-register it at stacks 1 and 2 too.
        assert 3 in fds[1].peers and 3 in fds[2].peers
        sys_.run(until=2.0)
        assert all(not fd.suspects() for fd in fds)


class TestPerfectFd:
    def test_suspects_exactly_crashed(self):
        sys_ = System(n=3, seed=0)
        fds = []
        for st in sys_.stacks:
            fd = PerfectFd(st, sys_.machines, detection_delay=ms(10))
            st.add_module(fd)
            fds.append(fd)
        sys_.machines[1].crash_at(0.5)
        sys_.run(until=1.0)
        assert fds[0].suspects() == {1}
        assert fds[2].suspects() == {1}

    def test_never_suspects_live(self):
        sys_ = System(n=3, seed=0)
        fds = []
        for st in sys_.stacks:
            fd = PerfectFd(st, sys_.machines)
            st.add_module(fd)
            fds.append(fd)
        sys_.run(until=2.0)
        assert all(not fd.suspects() for fd in fds)


class TestOracleFd:
    def test_scripted_suspicions(self):
        sys_ = System(n=2, seed=0)
        st = sys_.stack(0)
        fd = OracleFd(st, [0, 1], script=[(0.5, "suspect", 1), (1.0, "restore", 1)])
        st.add_module(fd)
        w = FdWatcher(st)
        st.add_module(w)
        sys_.run(until=2.0)
        assert [(k, r) for k, r, _t in w.events] == [("suspect", 1), ("restore", 1)]

    def test_manual_injection(self):
        sys_ = System(n=2, seed=0)
        st = sys_.stack(0)
        fd = OracleFd(st, [0, 1])
        st.add_module(fd)
        fd.inject_suspicion(1)
        assert fd.suspects() == {1}
        fd.inject_restore(1)
        assert fd.suspects() == frozenset()

    def test_never_suspects_self(self):
        sys_ = System(n=2, seed=0)
        st = sys_.stack(0)
        fd = OracleFd(st, [0, 1])
        st.add_module(fd)
        fd.inject_suspicion(0)
        assert fd.suspects() == frozenset()

    def test_bad_script_action(self):
        sys_ = System(n=2, seed=0)
        st = sys_.stack(0)
        fd = OracleFd(st, [0, 1], script=[(0.5, "explode", 1)])
        with pytest.raises(ValueError):
            st.add_module(fd)
