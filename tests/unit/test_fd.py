"""Unit tests: failure detectors."""

import pytest

from repro.kernel import Module, System, WellKnown
from repro.net import SimNetwork, SwitchedLan, UdpModule
from repro.fd import HeartbeatFd, OracleFd, PerfectFd
from repro.sim import ConstantLatency, ms


class FdWatcher(Module):
    REQUIRES = (WellKnown.FD,)
    PROTOCOL = "fd-watcher"

    def __init__(self, stack):
        super().__init__(stack)
        self.events = []
        self.subscribe(WellKnown.FD, "suspect", lambda r: self.events.append(("suspect", r, self.now)))
        self.subscribe(WellKnown.FD, "restore", lambda r: self.events.append(("restore", r, self.now)))


def build_hb(n=3, seed=9, **fd_kwargs):
    sys_ = System(n=n, seed=seed)
    net = SimNetwork(sys_.sim, sys_.machines, SwitchedLan(latency=ConstantLatency(0.0002)))
    fds, watchers = [], []
    group = list(range(n))
    for st in sys_.stacks:
        st.add_module(UdpModule(st, net))
        fd = HeartbeatFd(st, group, **fd_kwargs)
        st.add_module(fd)
        w = FdWatcher(st)
        st.add_module(w)
        fds.append(fd)
        watchers.append(w)
    return sys_, fds, watchers


class TestHeartbeatFd:
    def test_no_suspicions_in_calm_run(self):
        sys_, fds, watchers = build_hb()
        sys_.run(until=3.0)
        assert all(not fd.suspects() for fd in fds)
        assert all(w.events == [] for w in watchers)

    def test_crashed_peer_eventually_suspected_by_all(self):
        sys_, fds, watchers = build_hb()
        sys_.machines[2].crash_at(1.0)
        sys_.run(until=3.0)
        for i in (0, 1):
            assert 2 in fds[i].suspects()
            assert ("suspect", 2) in [(k, r) for k, r, _t in watchers[i].events]

    def test_suspicion_latency_bounded_by_timeout_plus_period(self):
        sys_, fds, watchers = build_hb(timeout=ms(200), period=ms(50))
        sys_.machines[2].crash_at(1.0)
        sys_.run(until=3.0)
        t_suspect = [t for k, r, t in watchers[0].events if k == "suspect" and r == 2][0]
        assert 1.0 < t_suspect < 1.0 + 0.200 + 2 * 0.050 + 0.01

    def test_suspicion_is_permanent_for_crashed_peer(self):
        sys_, fds, watchers = build_hb()
        sys_.machines[2].crash_at(0.5)
        sys_.run(until=5.0)
        restores = [e for e in watchers[0].events if e[0] == "restore"]
        assert restores == []

    def test_queries(self):
        sys_, fds, watchers = build_hb()
        sys_.machines[1].crash_at(0.5)
        sys_.run(until=2.0)
        stack0 = sys_.stack(0)
        assert stack0.query(WellKnown.FD, "is_suspected", 1)
        assert 1 in stack0.query(WellKnown.FD, "suspects")

    def test_adaptive_timeout_grows_after_false_suspicion(self):
        # Partition briefly so heartbeats are lost, then heal: the FD
        # wrongly suspects, repents, and raises that peer's timeout.
        sys_, fds, watchers = build_hb(timeout=ms(150), period=ms(40))
        # grab the network from the udp module
        udp = next(m for m in sys_.stack(0).modules.values() if m.protocol == "udp")
        network = udp.network
        sys_.sim.schedule(1.0, network.partition, {0}, {1, 2})
        sys_.sim.schedule(1.5, network.heal)
        sys_.run(until=4.0)
        fd0 = fds[0]
        assert fd0.false_suspicions > 0
        assert fd0.current_timeout(1) > ms(150)
        assert not fd0.suspects()  # repented after heal

    def test_validation(self):
        sys_ = System(n=2, seed=0)
        with pytest.raises(ValueError):
            HeartbeatFd(sys_.stack(0), [0, 1], period=0.0)
        with pytest.raises(ValueError):
            HeartbeatFd(sys_.stack(0), [0, 1], backoff=0.5)


class TestPerfectFd:
    def test_suspects_exactly_crashed(self):
        sys_ = System(n=3, seed=0)
        fds = []
        for st in sys_.stacks:
            fd = PerfectFd(st, sys_.machines, detection_delay=ms(10))
            st.add_module(fd)
            fds.append(fd)
        sys_.machines[1].crash_at(0.5)
        sys_.run(until=1.0)
        assert fds[0].suspects() == {1}
        assert fds[2].suspects() == {1}

    def test_never_suspects_live(self):
        sys_ = System(n=3, seed=0)
        fds = []
        for st in sys_.stacks:
            fd = PerfectFd(st, sys_.machines)
            st.add_module(fd)
            fds.append(fd)
        sys_.run(until=2.0)
        assert all(not fd.suspects() for fd in fds)


class TestOracleFd:
    def test_scripted_suspicions(self):
        sys_ = System(n=2, seed=0)
        st = sys_.stack(0)
        fd = OracleFd(st, [0, 1], script=[(0.5, "suspect", 1), (1.0, "restore", 1)])
        st.add_module(fd)
        w = FdWatcher(st)
        st.add_module(w)
        sys_.run(until=2.0)
        assert [(k, r) for k, r, _t in w.events] == [("suspect", 1), ("restore", 1)]

    def test_manual_injection(self):
        sys_ = System(n=2, seed=0)
        st = sys_.stack(0)
        fd = OracleFd(st, [0, 1])
        st.add_module(fd)
        fd.inject_suspicion(1)
        assert fd.suspects() == {1}
        fd.inject_restore(1)
        assert fd.suspects() == frozenset()

    def test_never_suspects_self(self):
        sys_ = System(n=2, seed=0)
        st = sys_.stack(0)
        fd = OracleFd(st, [0, 1])
        st.add_module(fd)
        fd.inject_suspicion(0)
        assert fd.suspects() == frozenset()

    def test_bad_script_action(self):
        sys_ = System(n=2, seed=0)
        st = sys_.stack(0)
        fd = OracleFd(st, [0, 1], script=[(0.5, "explode", 1)])
        with pytest.raises(ValueError):
            st.add_module(fd)
