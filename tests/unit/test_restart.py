"""Unit tests: the kernel restart path (crash-recovery incarnations).

``Machine.recover()`` fires the restart hooks the kernel consumes:
``Stack.restart()`` gives every module its ``on_restart`` and re-starts
blocked-call drains that died with the old incarnation's CPU.
"""

from repro.kernel import Module, System, TraceKind
from repro.net import Rp2pModule, SimNetwork, SwitchedLan, UdpModule
from repro.sim import ConstantLatency


class TickModule(Module):
    """A module whose liveness depends on a periodic timer."""

    PROTOCOL = "ticker"

    def __init__(self, stack, period=0.1):
        super().__init__(stack)
        self.period = period
        self.ticks = []
        self.restarts = 0

    def on_start(self):
        self._tick()

    def on_restart(self):
        self.restarts += 1
        self._tick()

    def _tick(self):
        self.ticks.append(self.now)
        self.set_timer(self.period, self._tick)


class PlainModule(Module):
    """Message-driven module: relies on the default no-op on_restart."""

    PROTOCOL = "plain"


class TestStackRestart:
    def test_recover_reinvokes_on_restart_on_every_module(self):
        sys_ = System(n=1, seed=0)
        st = sys_.stack(0)
        ticker = st.add_module(TickModule(st))
        st.add_module(PlainModule(st))  # must not blow up (default no-op)
        sys_.run(until=0.55)
        assert len(ticker.ticks) == 6  # 0.0 .. 0.5
        st.machine.crash()
        sys_.run(until=1.0)
        n_at_crash = len(ticker.ticks)
        sys_.run(until=1.35)
        assert len(ticker.ticks) == n_at_crash  # timers died with the epoch
        st.machine.recover()
        sys_.run(until=2.0)
        assert ticker.restarts == 1
        assert len(ticker.ticks) > n_at_crash  # the wheel is re-armed

    def test_recover_records_trace_event_with_epoch(self):
        sys_ = System(n=1, seed=0)
        st = sys_.stack(0)
        st.machine.crash()
        st.machine.recover()
        recovers = sys_.trace.of_kind(TraceKind.RECOVER)
        assert [e.stack_id for e in recovers] == [0]
        assert recovers[0].get("epoch") == 1

    def test_machine_epoch_counts_incarnations(self):
        sys_ = System(n=1, seed=0)
        m = sys_.machine(0)
        assert m.epoch == 0
        m.crash()
        m.recover()
        m.crash()
        m.recover()
        assert m.epoch == 2
        assert m.last_recovered_at == sys_.sim.now

    def test_timer_of_old_epoch_never_fires_after_restart(self):
        sys_ = System(n=1, seed=0)
        st = sys_.stack(0)
        fired = []
        st.machine.set_timer(1.0, fired.append, "old")
        st.machine.crash()
        st.machine.recover()
        st.machine.set_timer(1.0, fired.append, "new")
        sys_.run(until=3.0)
        assert fired == ["new"]


class TestRp2pRestart:
    def _world(self, n=2):
        sys_ = System(n=n, seed=3)
        net = SimNetwork(
            sys_.sim, sys_.machines, SwitchedLan(latency=ConstantLatency(0.0002))
        )
        rp2ps = []
        for st in sys_.stacks:
            st.add_module(UdpModule(st, net))
            rp2p = Rp2pModule(st)
            st.add_module(rp2p)
            rp2ps.append(rp2p)
        return sys_, net, rp2ps

    def test_sender_retransmits_again_after_its_own_restart(self):
        """A sender that crashes with unacked frames re-arms its
        retransmission timers on recovery instead of never retrying."""
        sys_, net, rp2ps = self._world()
        # Partition so the send stays unacked, then crash the sender.
        net.partition({0}, {1})
        sys_.sim.schedule_at(0.1, rp2ps[0].call, "rp2p", "send", 1, ("hello",), 10)
        sys_.sim.schedule_at(0.2, sys_.machines[0].crash)
        sys_.run(until=1.0)
        assert rp2ps[0].unacked_count(1) == 1
        retx_before = rp2ps[0].counters.get("retransmissions")
        sys_.machines[0].recover()
        net.heal()
        sys_.run(until=3.0)
        assert rp2ps[0].counters.get("retransmissions") > retx_before
        assert rp2ps[0].unacked_count(1) == 0  # delivered and acked
        assert rp2ps[1].counters.get("delivered") == 1
