"""Unit tests: the System container."""

import pytest

from repro.errors import KernelError
from repro.kernel import Module, System


class Simple(Module):
    PROVIDES = ("s",)
    PROTOCOL = "simple"

    def __init__(self, stack, **kwargs):
        super().__init__(stack)
        self.export_call("s", "noop", lambda: None)


class TestSystem:
    def test_builds_n_machines_and_stacks(self):
        sys_ = System(n=4, seed=0)
        assert len(sys_.machines) == 4
        assert len(sys_.stacks) == 4
        assert [m.machine_id for m in sys_.machines] == [0, 1, 2, 3]
        assert sys_.stack(2).stack_id == 2

    def test_n_must_be_positive(self):
        with pytest.raises(KernelError):
            System(n=0)

    def test_alive_tracking(self):
        sys_ = System(n=3, seed=0)
        assert sys_.alive_ids() == [0, 1, 2]
        sys_.crash(1)
        assert sys_.alive_ids() == [0, 2]
        assert [s.stack_id for s in sys_.alive_stacks()] == [0, 2]

    def test_crash_at_schedules(self):
        sys_ = System(n=2, seed=0)
        sys_.crash_at(0, 1.5)
        sys_.run(until=1.0)
        assert not sys_.machine(0).crashed
        sys_.run(until=2.0)
        assert sys_.machine(0).crashed

    def test_on_each_stack(self):
        sys_ = System(n=3, seed=0)
        visited = []
        sys_.on_each_stack(lambda st: visited.append(st.stack_id))
        assert visited == [0, 1, 2]
        visited.clear()
        sys_.on_each_stack(lambda st: visited.append(st.stack_id), only=[1])
        assert visited == [1]

    def test_create_module_everywhere(self):
        sys_ = System(n=3, seed=0)
        sys_.registry.register("simple", Simple, provides=("s",))
        sys_.create_module_everywhere("simple")
        for st in sys_.stacks:
            assert st.bound_module("s") is not None

    def test_trace_shared_across_stacks(self):
        sys_ = System(n=2, seed=0)
        sys_.registry.register("simple", Simple, provides=("s",))
        sys_.create_module_everywhere("simple")
        stacks_seen = {e.stack_id for e in sys_.trace}
        assert stacks_seen == {0, 1}

    def test_trace_disable(self):
        sys_ = System(n=2, seed=0, trace_enabled=False)
        sys_.registry.register("simple", Simple, provides=("s",))
        sys_.create_module_everywhere("simple")
        assert len(sys_.trace) == 0

    def test_run_delegates_to_sim(self):
        sys_ = System(n=1, seed=0)
        sys_.sim.schedule(0.5, lambda: None)
        sys_.run(until=1.0)
        assert sys_.sim.now == 1.0
