"""Unit tests: latency (paper definition), series tools, stats, throughput."""

import pytest

from repro.dpu.probes import DeliveryLog
from repro.metrics import (
    bin_series,
    delivery_throughput,
    find_perturbation,
    latency_series,
    mean_latency,
    message_latency,
    moving_average,
    relative_overhead,
    summarize,
    throughput_series,
    windowed_mean_latency,
)


def make_log():
    """m1 sent by 0 at t=1, delivered at t=1.1/1.2/1.3 on stacks 0/1/2."""
    log = DeliveryLog()
    log.note_send("m1", 0, 1.0)
    log.note_delivery("m1", 0, 1.1)
    log.note_delivery("m1", 1, 1.2)
    log.note_delivery("m1", 2, 1.3)
    log.note_send("m2", 1, 2.0)
    log.note_delivery("m2", 0, 2.4)
    log.note_delivery("m2", 1, 2.4)
    log.note_delivery("m2", 2, 2.4)
    return log


class TestPaperLatencyDefinition:
    def test_average_over_stacks(self):
        log = make_log()
        # t_i(m1) = 0.1, 0.2, 0.3 -> average 0.2
        assert message_latency(log, "m1") == pytest.approx(0.2)

    def test_subset_of_stacks(self):
        log = make_log()
        assert message_latency(log, "m1", stacks=[0, 2]) == pytest.approx(0.2)
        assert message_latency(log, "m1", stacks=[2]) == pytest.approx(0.3)

    def test_undelivered_returns_none(self):
        log = DeliveryLog()
        log.note_send("ghost", 0, 1.0)
        assert message_latency(log, "ghost") is None

    def test_series_ordered_by_send_time(self):
        log = make_log()
        series = latency_series(log)
        assert [p.key for p in series] == ["m1", "m2"]
        assert series[1].latency == pytest.approx(0.4)

    def test_mean_latency(self):
        assert mean_latency(make_log()) == pytest.approx(0.3)

    def test_windowed_mean(self):
        log = make_log()
        assert windowed_mean_latency(log, 0.0, 1.5) == pytest.approx(0.2)
        assert windowed_mean_latency(log, 1.5, 3.0) == pytest.approx(0.4)
        assert windowed_mean_latency(log, 5.0, 6.0) is None

    def test_duplicate_send_key_rejected(self):
        log = make_log()
        with pytest.raises(ValueError):
            log.note_send("m1", 2, 9.0)


class TestSeriesTools:
    def test_bin_series(self):
        pts = [(0.1, 1.0), (0.2, 3.0), (1.1, 10.0)]
        binned = bin_series(pts, bin_width=1.0, start=0.0)
        assert binned == [(0.5, 2.0), (1.5, 10.0)]

    def test_bin_series_empty(self):
        assert bin_series([], 1.0) == []

    def test_bin_width_validation(self):
        with pytest.raises(ValueError):
            bin_series([(0, 1)], 0.0)

    def test_moving_average(self):
        pts = [(float(i), float(i)) for i in range(5)]
        smooth = moving_average(pts, window=3)
        assert smooth[0][1] == pytest.approx(1.0)  # mean of 0,1,2

    def test_moving_average_short_input(self):
        pts = [(0.0, 1.0)]
        assert moving_average(pts, window=5) == pts

    def test_perturbation_found(self):
        base = [(t * 0.1, 1.0) for t in range(50)]
        spike = [(5.0 + t * 0.1, 5.0) for t in range(5)]
        tail = [(5.5 + t * 0.1, 1.0) for t in range(30)]
        p = find_perturbation(base + spike + tail, event_time=5.0)
        assert p is not None
        # One boundary point may land in the last pre-event bin (float
        # binning), so the baseline tolerance is deliberately loose.
        assert p.baseline == pytest.approx(1.0, rel=0.1)
        assert p.peak == pytest.approx(5.0, rel=0.1)
        assert 0.3 <= p.duration <= 0.8
        assert p.peak_factor == pytest.approx(5.0, rel=0.2)

    def test_no_perturbation_below_threshold(self):
        flat = [(t * 0.1, 1.0) for t in range(100)]
        assert find_perturbation(flat, event_time=5.0) is None


class TestStats:
    def test_summary_values(self):
        s = summarize([1.0, 2.0, 3.0, 4.0])
        assert s.count == 4
        assert s.mean == pytest.approx(2.5)
        assert s.median == pytest.approx(2.5)
        assert s.minimum == 1.0 and s.maximum == 4.0

    def test_empty_summary(self):
        assert summarize([]) is None

    def test_single_value_std_zero(self):
        assert summarize([5.0]).std == 0.0

    def test_format_scaling(self):
        s = summarize([0.001, 0.002])
        text = s.format(unit="ms", scale=1e3)
        assert "mean=1.500ms" in text

    def test_relative_overhead(self):
        assert relative_overhead(100.0, 105.0) == pytest.approx(0.05)
        with pytest.raises(ValueError):
            relative_overhead(0.0, 1.0)


class TestThroughput:
    def test_delivery_throughput(self):
        log = make_log()
        assert delivery_throughput(log, 0, 0.0, 4.0) == pytest.approx(0.5)

    def test_bad_window(self):
        with pytest.raises(ValueError):
            delivery_throughput(make_log(), 0, 2.0, 2.0)

    def test_throughput_series(self):
        log = make_log()
        series = throughput_series(log, 0, bin_width=1.0)
        assert len(series) == 2
