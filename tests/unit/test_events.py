"""Unit tests: the deterministic event queue."""

import pytest

from repro.sim.events import (
    PRIORITY_CONTROL,
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    EventQueue,
)


def drain(queue):
    out = []
    while queue:
        out.append(queue.pop())
    return out


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(2.0, lambda: None)
        q.push(1.0, lambda: None)
        q.push(3.0, lambda: None)
        assert [h.time for h in drain(q)] == [1.0, 2.0, 3.0]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        a = q.push(1.0, lambda: None, priority=PRIORITY_LATE)
        b = q.push(1.0, lambda: None, priority=PRIORITY_CONTROL)
        c = q.push(1.0, lambda: None, priority=PRIORITY_NORMAL)
        assert drain(q) == [b, c, a]

    def test_fifo_among_equal_time_and_priority(self):
        q = EventQueue()
        handles = [q.push(1.0, lambda: None) for _ in range(10)]
        assert drain(q) == handles

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, lambda: None)
        q.push(2.0, lambda: None)
        assert q.peek_time() == 2.0


class TestCancellation:
    def test_cancel_removes_from_len(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        assert len(q) == 1
        q.cancel(h)
        assert len(q) == 0
        assert not q

    def test_cancelled_event_not_popped(self):
        q = EventQueue()
        h1 = q.push(1.0, lambda: None)
        h2 = q.push(2.0, lambda: None)
        q.cancel(h1)
        assert drain(q) == [h2]

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        q.cancel(h)
        q.cancel(h)
        assert len(q) == 0

    def test_cancel_releases_references(self):
        q = EventQueue()
        h = q.push(1.0, print, ("payload",))
        q.cancel(h)
        assert h.callback is None
        assert h.args == ()

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        h1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.cancel(h1)
        assert q.peek_time() == 2.0

    def test_clear(self):
        q = EventQueue()
        handles = [q.push(float(i), lambda: None) for i in range(5)]
        q.clear()
        assert len(q) == 0
        assert all(h.cancelled for h in handles)


class TestErrors:
    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()
