"""Unit tests: the deterministic event queue."""

import pytest

from repro.sim.events import (
    PRIORITY_CONTROL,
    PRIORITY_LATE,
    PRIORITY_NORMAL,
    EventQueue,
)


def drain(queue):
    out = []
    while queue:
        out.append(queue.pop())
    return out


class TestOrdering:
    def test_time_order(self):
        q = EventQueue()
        q.push(2.0, lambda: None)
        q.push(1.0, lambda: None)
        q.push(3.0, lambda: None)
        assert [h.time for h in drain(q)] == [1.0, 2.0, 3.0]

    def test_priority_breaks_time_ties(self):
        q = EventQueue()
        a = q.push(1.0, lambda: None, priority=PRIORITY_LATE)
        b = q.push(1.0, lambda: None, priority=PRIORITY_CONTROL)
        c = q.push(1.0, lambda: None, priority=PRIORITY_NORMAL)
        assert drain(q) == [b, c, a]

    def test_fifo_among_equal_time_and_priority(self):
        q = EventQueue()
        handles = [q.push(1.0, lambda: None) for _ in range(10)]
        assert drain(q) == handles

    def test_peek_time(self):
        q = EventQueue()
        assert q.peek_time() is None
        q.push(5.0, lambda: None)
        q.push(2.0, lambda: None)
        assert q.peek_time() == 2.0


class TestCancellation:
    def test_cancel_removes_from_len(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        assert len(q) == 1
        q.cancel(h)
        assert len(q) == 0
        assert not q

    def test_cancelled_event_not_popped(self):
        q = EventQueue()
        h1 = q.push(1.0, lambda: None)
        h2 = q.push(2.0, lambda: None)
        q.cancel(h1)
        assert drain(q) == [h2]

    def test_cancel_is_idempotent(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        q.cancel(h)
        q.cancel(h)
        assert len(q) == 0

    def test_cancel_releases_references(self):
        q = EventQueue()
        h = q.push(1.0, print, ("payload",))
        q.cancel(h)
        assert h.callback is None
        assert h.args == ()

    def test_peek_skips_cancelled(self):
        q = EventQueue()
        h1 = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.cancel(h1)
        assert q.peek_time() == 2.0

    def test_clear(self):
        q = EventQueue()
        handles = [q.push(float(i), lambda: None) for i in range(5)]
        q.clear()
        assert len(q) == 0
        assert all(h.cancelled for h in handles)


class TestErrors:
    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()


class TestFastPath:
    """The fire-and-forget entries obey the same ordering contract."""

    def test_fast_entries_order_with_handles(self):
        q = EventQueue()
        fired = []
        q.push_fast(2.0, fired.append, ("fast2",))
        q.push(1.0, fired.append, ("slow1",))
        q.push_fast(1.0, fired.append, ("fast1-later",))
        q.push(3.0, fired.append, ("slow3",))
        while q:
            h = q.pop()
            h.callback(*h.args)
        assert fired == ["slow1", "fast1-later", "fast2", "slow3"]

    def test_fast_priority_breaks_ties(self):
        q = EventQueue()
        fired = []
        q.push_fast(1.0, fired.append, ("late",), priority=PRIORITY_LATE)
        q.push_fast(1.0, fired.append, ("control",), priority=PRIORITY_CONTROL)
        q.push_fast(1.0, fired.append, ("normal",), priority=PRIORITY_NORMAL)
        while q:
            h = q.pop()
            h.callback(*h.args)
        assert fired == ["control", "normal", "late"]

    def test_fifo_among_mixed_equal_entries(self):
        q = EventQueue()
        fired = []
        for i in range(6):
            if i % 2:
                q.push(1.0, fired.append, (i,))
            else:
                q.push_fast(1.0, fired.append, (i,))
        while q:
            h = q.pop()
            h.callback(*h.args)
        assert fired == list(range(6))

    def test_pop_materialises_transient_handle(self):
        q = EventQueue()
        q.push_fast(1.5, print, ("x",), priority=PRIORITY_LATE)
        h = q.pop()
        assert (h.time, h.priority) == (1.5, PRIORITY_LATE)
        assert h.callback is print and h.args == ("x",)

    def test_len_counts_fast_entries(self):
        q = EventQueue()
        q.push_fast(1.0, lambda: None)
        q.push(2.0, lambda: None)
        assert len(q) == 2
        q.pop()
        assert len(q) == 1

    def test_peek_time_sees_fast_entries(self):
        q = EventQueue()
        q.push(5.0, lambda: None)
        q.push_fast(2.0, lambda: None)
        assert q.peek_time() == 2.0

    def test_clear_drops_fast_entries(self):
        q = EventQueue()
        q.push_fast(1.0, lambda: None)
        q.push(2.0, lambda: None)
        q.clear()
        assert len(q) == 0 and q.peek_time() is None


class TestCancelAfterFire:
    def test_cancel_of_fired_handle_keeps_count_consistent(self):
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        other = q.push(2.0, lambda: None)
        fired = q.pop()
        assert fired is h
        fired.callback, fired.args = None, ()  # what the engine does on fire
        q.cancel(h)  # late cancel: must be a no-op
        assert len(q) == 1
        assert q.pop() is other
        assert len(q) == 0

    def test_cancel_of_popped_fast_entry_handle_is_noop(self):
        """The transient handle pop() materialises for a fire-and-forget
        entry is already fired; cancelling it must not corrupt the count."""
        q = EventQueue()
        q.push_fast(1.0, lambda: None)
        q.push(2.0, lambda: None)
        transient = q.pop()
        q.cancel(transient)
        assert len(q) == 1 and bool(q)
        assert q.peek_time() == 2.0

    def test_cancel_after_pop_without_engine_is_still_noop(self):
        """pop() marks the handle fired, so a consumer that pops and
        invokes the callback itself cannot corrupt the count either."""
        q = EventQueue()
        h = q.push(1.0, lambda: None)
        q.push(2.0, lambda: None)
        popped = q.pop()
        popped.callback(*popped.args)  # fire without nulling anything
        q.cancel(h)
        assert len(q) == 1 and bool(q)
        assert q.peek_time() == 2.0
