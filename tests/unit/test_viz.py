"""Unit tests: ASCII plotting and tables."""

import pytest

from repro.viz import ascii_plot, render_table


class TestAsciiPlot:
    def test_renders_axes_and_markers(self):
        chart = ascii_plot(
            {"s1": [(0.0, 0.0), (1.0, 1.0)]},
            width=30,
            height=8,
            title="T",
            xlabel="x",
            ylabel="y",
        )
        assert "T" in chart
        assert "+ s1" in chart
        assert "x: x" in chart
        lines = chart.splitlines()
        assert any("+" in ln and "|" in ln for ln in lines)

    def test_multiple_series_distinct_markers(self):
        chart = ascii_plot(
            {"a": [(0, 0)], "b": [(1, 1)]}, width=30, height=8
        )
        assert "+ a" in chart and "x b" in chart

    def test_empty_series(self):
        assert "empty plot" in ascii_plot({"a": []}, title="nothing")

    def test_degenerate_single_point(self):
        chart = ascii_plot({"a": [(1.0, 5.0)]}, width=25, height=6)
        assert "|" in chart  # renders without dividing by zero

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": [(0, 0)]}, width=5, height=2)

    def test_y_bounds_override(self):
        chart = ascii_plot(
            {"a": [(0.0, 1.0)]}, width=30, height=8, y_min=0.0, y_max=10.0
        )
        assert "10" in chart and "0" in chart


class TestRenderTable:
    def test_alignment_and_floats(self):
        table = render_table(
            ["name", "value"], [("x", 1.23456), ("longer", 7)], title="T"
        )
        lines = table.splitlines()
        assert lines[0] == "T"
        assert "1.235" in table
        assert all("|" in ln for ln in lines[1:2])

    def test_empty_rows(self):
        table = render_table(["a", "b"], [])
        assert "a" in table and "b" in table
