"""Unit tests: load generation."""

import pytest

from repro.dpu.probes import DeliveryLog, payload_key
from repro.kernel import Module, System, WellKnown
from repro.workload import FixedPayload, LoadGeneratorModule


class SinkAbcast(Module):
    PROVIDES = (WellKnown.ABCAST,)
    PROTOCOL = "sink-abcast"

    def __init__(self, stack):
        super().__init__(stack)
        self.received = []
        self.export_call(
            WellKnown.ABCAST, "abcast", lambda p, s: self.received.append((p, s, self.now))
        )


def build(rate=100.0, **kwargs):
    sys_ = System(n=1, seed=4)
    st = sys_.stack(0)
    sink = SinkAbcast(st)
    st.add_module(sink)
    log = DeliveryLog()
    gen = LoadGeneratorModule(
        st, log, rate_per_sec=rate, service=WellKnown.ABCAST, **kwargs
    )
    st.add_module(gen)
    return sys_, sink, gen, log


class TestFixedPayload:
    def test_unique_keys(self):
        p = FixedPayload(100)
        (pl1, s1) = p.make(0, 0)
        (pl2, s2) = p.make(0, 1)
        assert pl1[0] != pl2[0]
        assert s1 == s2 == 100

    def test_key_extraction(self):
        payload, _ = FixedPayload(10).make(3, 7)
        assert payload_key(payload) == ("wl", 3, 7)

    def test_negative_size_rejected(self):
        with pytest.raises(ValueError):
            FixedPayload(-1)


class TestGenerator:
    def test_constant_rate(self):
        sys_, sink, gen, log = build(rate=100.0, stop_at=1.0)
        sys_.run(until=2.0)
        assert gen.sent == 100
        assert len(sink.received) == 100

    def test_periodic_spacing(self):
        sys_, sink, gen, log = build(rate=10.0, stop_at=0.5)
        sys_.run(until=1.0)
        times = [t for _p, _s, t in sink.received]
        gaps = [b - a for a, b in zip(times, times[1:])]
        assert all(g == pytest.approx(0.1, abs=1e-3) for g in gaps)

    def test_start_at_honoured(self):
        sys_, sink, gen, log = build(rate=100.0, start_at=0.5, stop_at=0.6)
        sys_.run(until=1.0)
        assert sink.received[0][2] >= 0.5

    def test_sends_registered_in_log(self):
        sys_, sink, gen, log = build(rate=50.0, stop_at=0.2)
        sys_.run(until=1.0)
        assert len(log.sends) == gen.sent
        senders = {s for s, _t in log.sends.values()}
        assert senders == {0}

    def test_jittered_rate_close_to_nominal(self):
        sys_, sink, gen, log = build(rate=200.0, stop_at=2.0, jitter=0.5)
        sys_.run(until=3.0)
        assert gen.sent == pytest.approx(400, rel=0.15)

    def test_validation(self):
        sys_ = System(n=1, seed=0)
        st = sys_.stack(0)
        with pytest.raises(ValueError):
            LoadGeneratorModule(st, DeliveryLog(), rate_per_sec=0.0)
        with pytest.raises(ValueError):
            LoadGeneratorModule(st, DeliveryLog(), rate_per_sec=1.0, jitter=2.0)


class TestBurst:
    def test_burst_sends_back_to_back(self):
        sys_, sink, gen, _log = build(rate=100.0, burst=5, stop_at=0.5)
        sys_.run(until=1.0)
        # Bursts of 5 at a stretched period: mean rate is preserved.
        assert gen.sent == sink.received.__len__()
        times = [t for _p, _s, t in sink.received]
        # The first 5 sends belong to one tick (only the serial kernel
        # dispatch cost separates them), the 6th waits a full period.
        assert times[4] - times[0] < 0.001
        assert times[5] - times[4] > 0.04
        assert gen.sent == pytest.approx(0.5 * 100.0, abs=5)

    def test_burst_one_matches_plain_period(self):
        _sys, _sink, gen, _log = build(rate=100.0, burst=1)
        assert gen.period == pytest.approx(0.01)

    def test_burst_must_be_positive(self):
        with pytest.raises(ValueError):
            build(burst=0)
