"""Unit tests: reliable FIFO point-to-point channels."""


from repro.kernel import Module, System, WellKnown
from repro.net import Rp2pModule, SimNetwork, SwitchedLan, UdpModule
from repro.sim import ConstantLatency


def build(n=2, loss=0.0, dup=0.0, seed=5, ack_delay=0.0):
    sys_ = System(n=n, seed=seed)
    lan = SwitchedLan(
        latency=ConstantLatency(0.0002), loss_rate=loss, duplicate_rate=dup
    )
    net = SimNetwork(sys_.sim, sys_.machines, lan)

    class App(Module):
        REQUIRES = (WellKnown.RP2P,)
        PROTOCOL = "app"

        def __init__(self, stack):
            super().__init__(stack)
            self.got = []
            self.subscribe(
                WellKnown.RP2P, "deliver", lambda s, p, z: self.got.append((s, p))
            )

    apps, rp2ps = [], []
    for st in sys_.stacks:
        st.add_module(UdpModule(st, net))
        rp = Rp2pModule(st, ack_delay=ack_delay)
        st.add_module(rp)
        rp2ps.append(rp)
        a = App(st)
        st.add_module(a)
        apps.append(a)
    return sys_, net, apps, rp2ps


class TestReliableDelivery:
    def test_basic_send(self):
        sys_, net, apps, rp2ps = build()
        apps[0].call(WellKnown.RP2P, "send", 1, "hello", 64)
        sys_.run(until=1.0)
        assert apps[1].got == [(0, "hello")]

    def test_fifo_order_no_loss(self):
        sys_, net, apps, rp2ps = build()
        for i in range(20):
            apps[0].call(WellKnown.RP2P, "send", 1, i, 64)
        sys_.run(until=1.0)
        assert [p for _s, p in apps[1].got] == list(range(20))

    def test_fifo_exactly_once_under_heavy_loss(self):
        sys_, net, apps, rp2ps = build(loss=0.4)
        for i in range(30):
            apps[0].call(WellKnown.RP2P, "send", 1, i, 64)
        sys_.run(until=20.0)
        assert [p for _s, p in apps[1].got] == list(range(30))
        assert rp2ps[0].counters.get("retransmissions") > 0
        assert rp2ps[0].unacked_count() == 0

    def test_exactly_once_under_duplication(self):
        sys_, net, apps, rp2ps = build(dup=0.4)
        for i in range(30):
            apps[0].call(WellKnown.RP2P, "send", 1, i, 64)
        sys_.run(until=20.0)
        assert [p for _s, p in apps[1].got] == list(range(30))

    def test_self_send_delivers_locally(self):
        sys_, net, apps, rp2ps = build()
        apps[0].call(WellKnown.RP2P, "send", 0, "me", 64)
        sys_.run(until=1.0)
        assert apps[0].got == [(0, "me")]
        assert net.stats().get("sent", 0) == 0  # never touched the wire

    def test_bidirectional_channels_independent(self):
        sys_, net, apps, rp2ps = build()
        apps[0].call(WellKnown.RP2P, "send", 1, "a", 64)
        apps[1].call(WellKnown.RP2P, "send", 0, "b", 64)
        sys_.run(until=1.0)
        assert apps[1].got == [(0, "a")]
        assert apps[0].got == [(1, "b")]


class TestAcks:
    def test_unacked_drains(self):
        sys_, net, apps, rp2ps = build()
        for i in range(5):
            apps[0].call(WellKnown.RP2P, "send", 1, i, 64)
        sys_.run(until=1.0)
        assert rp2ps[0].unacked_count(1) == 0

    def test_delayed_acks_aggregate(self):
        sys_imm, _, apps_imm, rp_imm = build(ack_delay=0.0)
        for i in range(20):
            apps_imm[0].call(WellKnown.RP2P, "send", 1, i, 64)
        sys_imm.run(until=1.0)
        immediate_acks = rp_imm[1].counters.get("acks_sent")

        sys_del, _, apps_del, rp_del = build(ack_delay=0.002)
        for i in range(20):
            apps_del[0].call(WellKnown.RP2P, "send", 1, i, 64)
        sys_del.run(until=1.0)
        delayed_acks = rp_del[1].counters.get("acks_sent")
        assert delayed_acks < immediate_acks
        assert rp_del[0].unacked_count() == 0

    def test_retransmit_to_crashed_peer_stops_mattering(self):
        sys_, net, apps, rp2ps = build()
        sys_.machines[1].crash()
        apps[0].call(WellKnown.RP2P, "send", 1, "lost", 64)
        sys_.run(until=2.0)
        # The message is never acked; rp2p keeps it buffered (crash-stop).
        assert rp2ps[0].unacked_count(1) == 1
        assert apps[1].got == []


class TestDedup:
    def test_stale_duplicates_dropped(self):
        sys_, net, apps, rp2ps = build(loss=0.3, seed=11)
        for i in range(20):
            apps[0].call(WellKnown.RP2P, "send", 1, i, 64)
        sys_.run(until=20.0)
        deliveries = [p for _s, p in apps[1].got]
        assert deliveries == sorted(set(deliveries))
