"""Typing gate: mypy over ``src/repro`` plus an AST fallback audit.

The strict tier (``repro.kernel``, ``repro.runtime``, ``repro.analysis``
— see ``[tool.mypy]`` in ``pyproject.toml``) must type-check; the other
packages are configured with ``ignore_errors`` until promoted.  The
mypy run skips when mypy is not installed (it is a dev extra, not a
runtime dependency); the AST audit below always runs, so the
annotation *coverage* part of the gate holds even without mypy.
"""

import ast
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]
STRICT_PACKAGES = ("kernel", "runtime", "analysis")


def test_mypy_clean():
    api = pytest.importorskip("mypy.api", reason="mypy is a dev extra (CI installs it)")
    stdout, stderr, status = api.run(
        ["--config-file", str(REPO_ROOT / "pyproject.toml")]
    )
    assert status == 0, f"mypy failed:\n{stdout}\n{stderr}"


def _defs(tree):
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def test_strict_tier_is_fully_annotated():
    """Every def in the strict tier annotates its params and return.

    This is the ``disallow_untyped_defs`` / ``disallow_incomplete_defs``
    half of the mypy gate, enforced with a pure-AST walk so it runs in
    environments without mypy.
    """
    gaps = []
    for pkg in STRICT_PACKAGES:
        for path in sorted((REPO_ROOT / "src" / "repro" / pkg).rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in _defs(tree):
                args = node.args
                params = args.posonlyargs + args.args + args.kwonlyargs
                for i, arg in enumerate(params):
                    if i == 0 and arg.arg in ("self", "cls"):
                        continue
                    if arg.annotation is None:
                        gaps.append(f"{path}:{node.lineno} {node.name}({arg.arg})")
                if args.vararg is not None and args.vararg.annotation is None:
                    gaps.append(f"{path}:{node.lineno} {node.name}(*{args.vararg.arg})")
                if args.kwarg is not None and args.kwarg.annotation is None:
                    gaps.append(f"{path}:{node.lineno} {node.name}(**{args.kwarg.arg})")
                if node.returns is None and node.name != "__init__":
                    gaps.append(f"{path}:{node.lineno} {node.name} -> ?")
    assert not gaps, "unannotated defs in the strict typing tier:\n" + "\n".join(gaps)


def test_strict_tier_has_no_implicit_optional():
    """``x: T = None`` without Optional in the strict tier is a gap."""
    gaps = []
    for pkg in STRICT_PACKAGES:
        for path in sorted((REPO_ROOT / "src" / "repro" / pkg).rglob("*.py")):
            tree = ast.parse(path.read_text(encoding="utf-8"))
            for node in _defs(tree):
                args = node.args
                pos = args.posonlyargs + args.args
                for arg, default in zip(pos[len(pos) - len(args.defaults):], args.defaults):
                    if not (isinstance(default, ast.Constant) and default.value is None):
                        continue
                    if arg.annotation is None:
                        continue
                    text = ast.unparse(arg.annotation)
                    if "Optional" not in text and "None" not in text and "Any" not in text:
                        gaps.append(f"{path}:{node.lineno} {node.name}({arg.arg}: {text} = None)")
    assert not gaps, "implicit Optional in the strict typing tier:\n" + "\n".join(gaps)


def test_mypy_config_present():
    text = (REPO_ROOT / "pyproject.toml").read_text(encoding="utf-8")
    assert "[tool.mypy]" in text
    for pkg in ("repro.kernel.*", "repro.runtime.*", "repro.analysis.*"):
        assert f'"{pkg}"' in text, f"{pkg} missing from the strict mypy override"
    assert "disallow_untyped_defs = true" in text
