"""Drift test: R3's static wire model vs the runtime codec.

R3 reasons about ``register_wire_type`` calls purely from the AST; the
runtime codec (:mod:`repro.runtime.codec`) is the ground truth.  This
test pins the two together: every registration R3 discovers statically
must exist in the runtime registry (and vice versa), every registered
type must survive an encode/decode round trip, and the static
supported-type model must agree with what the codec actually accepts.
"""

import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis.project import Project
from repro.analysis.rules.r3_wire import collect_registrations
from repro.net.message import NetMessage
from repro.runtime.codec import CodecError, decode_value, encode_value

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_TREE = str(REPO_ROOT / "src" / "repro")

# One sample instance per registered wire name.  Adding a wire type
# without extending this map fails test_every_registered_type_round_trips
# below — that is the drift alarm doing its job.
SAMPLES = {
    "net.NetMessage": lambda: NetMessage(
        src=1, dst=2, payload=("ping", 7, b"\x00\x01"), size_bytes=92, msg_id=41
    ),
}

EQUIVALENT_FIELDS = {
    "net.NetMessage": ("src", "dst", "payload", "size_bytes", "msg_id"),
}


@pytest.fixture(scope="module")
def static_registrations():
    return collect_registrations(Project([SRC_TREE]))


def _pristine_runtime_registry(modules):
    """``registered_wire_types()`` from a fresh interpreter.

    The in-process registry is polluted by tests that register throwaway
    wire types (``test_codec.py``), so the ground truth comes from a
    subprocess that imports exactly the modules the static scan found
    registrations in.
    """
    code = "; ".join(
        [f"import {m}" for m in sorted(set(modules))]
        + [
            "from repro.runtime.codec import registered_wire_types",
            "print('\\n'.join(registered_wire_types()))",
        ]
    )
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    out = subprocess.run(
        [sys.executable, "-c", code], capture_output=True, text=True, env=env
    )
    assert out.returncode == 0, out.stderr
    return sorted(line for line in out.stdout.splitlines() if line)


def test_static_model_matches_runtime_registry(static_registrations):
    static_names = sorted(r.wire_name for r in static_registrations)
    runtime_names = _pristine_runtime_registry(
        r.file.module for r in static_registrations
    )
    assert static_names == runtime_names, (
        "R3's AST scan and the runtime codec registry disagree: either a "
        "registration happens in code R3 cannot see (fix R3) or a static "
        "registration never runs (fix the module)"
    )


def test_static_pack_fields_match_runtime(static_registrations):
    by_name = {r.wire_name: r for r in static_registrations}
    assert set(by_name) == set(EQUIVALENT_FIELDS)
    for name, fields in EQUIVALENT_FIELDS.items():
        assert by_name[name].packed_fields == fields


def test_every_registered_type_round_trips(static_registrations):
    # Keyed on the *static* registration list, not the live registry:
    # other tests register throwaway wire types in this process.
    names = sorted(r.wire_name for r in static_registrations)
    missing = sorted(set(names) - set(SAMPLES))
    assert not missing, f"no round-trip sample for wire type(s): {missing}"
    for name in names:
        original = SAMPLES[name]()
        decoded = decode_value(encode_value(original))
        assert decoded == original, f"{name} did not survive the wire"
        assert type(decoded) is type(original)


def test_codec_rejects_what_r3_rejects():
    # The static model calls a bare object unsupported (the fixture's
    # OpaqueBlob case); the runtime codec must agree at encode time.
    class OpaqueBlob:
        pass

    with pytest.raises(CodecError):
        encode_value(OpaqueBlob())
    with pytest.raises(CodecError):
        encode_value(NetMessage(src=1, dst=2, payload=OpaqueBlob(), size_bytes=0))


def test_codec_accepts_what_r3_accepts():
    # Every leaf/container in R3's supported sets maps to a codec tag.
    sample = {
        "none": None,
        "bool": True,
        "int": 7,
        "big": 2**40,
        "float": 0.5,
        "str": "x",
        "bytes": b"\x01",
        "tuple": (1, 2),
        "list": [1, 2],
        "set": {1, 2},
        "frozen": frozenset((1, 2)),
    }
    assert decode_value(encode_value(sample)) == sample
