"""Unit tests: the generic indirection module (structural pattern)."""

import pytest

from repro.dpu import IndirectionModule
from repro.kernel import Module, System


class Inner(Module):
    PROVIDES = ("svc",)
    PROTOCOL = "inner"

    def __init__(self, stack):
        super().__init__(stack)
        self.calls = []
        self.export_call("svc", "go", lambda *a: self.calls.append(a))
        self.export_query("svc", "state", lambda: "inner-state")

    def emit(self, value):
        self.respond("svc", "done", value)


class Outer(Module):
    REQUIRES = ("r-svc",)
    PROTOCOL = "outer"

    def __init__(self, stack):
        super().__init__(stack)
        self.heard = []
        self.subscribe("r-svc", "done", self.heard.append)


def build():
    sys_ = System(n=1, seed=0)
    st = sys_.stack(0)
    inner = st.add_module(Inner(st))
    indirection = st.add_module(
        IndirectionModule(st, "svc", calls=["go"], responses=["done"], queries=["state"])
    )
    outer = st.add_module(Outer(st))
    return sys_, st, inner, indirection, outer


class TestTransparentRelay:
    def test_call_forwarded_down(self):
        sys_, st, inner, ind, outer = build()
        outer.call("r-svc", "go", 1, 2)
        sys_.run()
        assert inner.calls == [(1, 2)]

    def test_response_forwarded_up(self):
        sys_, st, inner, ind, outer = build()
        inner.emit("payload")
        sys_.run()
        assert outer.heard == ["payload"]

    def test_query_forwarded_synchronously(self):
        sys_, st, inner, ind, outer = build()
        assert st.query("r-svc", "state") == "inner-state"

    def test_names_follow_convention(self):
        sys_, st, inner, ind, outer = build()
        assert ind.wrapped_service == "svc"
        assert ind.indirect_service == "r-svc"
        assert ind.provides == ("r-svc",)
        assert ind.requires == ("svc",)

    def test_extra_dispatch_cost_is_paid(self):
        """The indirection level costs one extra call dispatch and one
        extra response dispatch — the structural price the paper
        measures as ≈5%."""
        sys_, st, inner, ind, outer = build()
        outer.call("r-svc", "go")
        sys_.run()
        assert sys_.sim.now == pytest.approx(2 * st.call_cost)

    def test_undeclared_call_not_forwarded(self):
        sys_, st, inner, ind, outer = build()
        outer.call("r-svc", "unknown")
        with pytest.raises(Exception):
            sys_.run()
