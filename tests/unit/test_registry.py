"""Unit tests: protocol registry and the create_module recursion (Alg. 1, 22-28)."""

import pytest

from repro.errors import RequirementError, UnknownProtocolError
from repro.kernel import Module


def make_protocol(name, provides, requires=()):
    class P(Module):
        PROVIDES = tuple(provides)
        REQUIRES = tuple(requires)
        PROTOCOL = name

        def __init__(self, stack, **kwargs):
            super().__init__(stack)
            self.extra = kwargs
            for svc in self.PROVIDES:
                self.export_call(svc, "noop", lambda: None)

    P.__name__ = f"P_{name}"
    return P


@pytest.fixture
def stack(system):
    return system.stack(0)


class TestRegistration:
    def test_register_and_info(self, system):
        cls = make_protocol("p1", ["a"])
        info = system.registry.register("p1", cls, provides=("a",))
        assert system.registry.info("p1") is info
        assert system.registry.known() == ["p1"]

    def test_duplicate_registration_rejected(self, system):
        cls = make_protocol("p1", ["a"])
        system.registry.register("p1", cls, provides=("a",))
        with pytest.raises(UnknownProtocolError):
            system.registry.register("p1", cls, provides=("a",))

    def test_unknown_protocol(self, system):
        with pytest.raises(UnknownProtocolError):
            system.registry.info("ghost")

    def test_providers_of_and_default(self, system):
        a1 = make_protocol("a1", ["a"])
        a2 = make_protocol("a2", ["a"])
        system.registry.register("a1", a1, provides=("a",))
        system.registry.register("a2", a2, provides=("a",), default_for=("a",))
        assert [p.name for p in system.registry.providers_of("a")] == ["a1", "a2"]
        assert system.registry.default_provider("a").name == "a2"

    def test_default_without_explicit_is_first_registered(self, system):
        a1 = make_protocol("a1", ["a"])
        a2 = make_protocol("a2", ["a"])
        system.registry.register("a1", a1, provides=("a",))
        system.registry.register("a2", a2, provides=("a",))
        assert system.registry.default_provider("a").name == "a1"

    def test_default_must_provide_service(self, system):
        cls = make_protocol("p", ["a"])
        with pytest.raises(RequirementError):
            system.registry.register("p", cls, provides=("a",), default_for=("b",))


class TestCreateModuleRecursion:
    def test_simple_create_binds(self, system, stack):
        cls = make_protocol("p", ["a"])
        system.registry.register("p", cls, provides=("a",))
        module = system.registry.create_module(stack, "p")
        assert stack.bound_module("a") is module

    def test_recursion_satisfies_requirements(self, system, stack):
        """The paper's key flexibility: a new protocol may need services
        no module in the stack provides yet — they are created too."""
        top = make_protocol("top", ["a"], requires=["b"])
        mid = make_protocol("mid", ["b"], requires=["c"])
        bot = make_protocol("bot", ["c"])
        system.registry.register("top", top, provides=("a",), requires=("b",))
        system.registry.register("mid", mid, provides=("b",), requires=("c",))
        system.registry.register("bot", bot, provides=("c",))
        system.registry.create_module(stack, "top")
        assert stack.bound_module("a") is not None
        assert stack.bound_module("b") is not None
        assert stack.bound_module("c") is not None

    def test_bound_requirement_not_duplicated(self, system, stack):
        dep = make_protocol("dep", ["b"])
        top = make_protocol("top", ["a"], requires=["b"])
        system.registry.register("dep", dep, provides=("b",))
        system.registry.register("top", top, provides=("a",), requires=("b",))
        existing = system.registry.create_module(stack, "dep")
        system.registry.create_module(stack, "top")
        assert stack.bound_module("b") is existing
        assert len(stack.modules_providing("b")) == 1

    def test_existing_unbound_provider_rebound_not_recreated(self, system, stack):
        dep = make_protocol("dep", ["b"])
        top = make_protocol("top", ["a"], requires=["b"])
        system.registry.register("dep", dep, provides=("b",))
        system.registry.register("top", top, provides=("a",), requires=("b",))
        existing = system.registry.create_module(stack, "dep")
        stack.unbind("b")
        system.registry.create_module(stack, "top")
        assert stack.bound_module("b") is existing
        assert len(stack.modules_providing("b")) == 1

    def test_missing_provider_raises(self, system, stack):
        top = make_protocol("top", ["a"], requires=["ghost-svc"])
        system.registry.register("top", top, provides=("a",), requires=("ghost-svc",))
        with pytest.raises(RequirementError, match="ghost-svc"):
            system.registry.create_module(stack, "top")

    def test_cycle_detected(self, system, stack):
        p1 = make_protocol("p1", ["a"], requires=["b"])
        p2 = make_protocol("p2", ["b"], requires=["a"])
        system.registry.register("p1", p1, provides=("a",), requires=("b",))
        system.registry.register("p2", p2, provides=("b",), requires=("a",))
        # p1 -> needs b -> creates p2 -> needs a... but a IS bound by then
        # (p1 was bound before recursing), so this resolves cleanly.
        system.registry.create_module(stack, "p1")
        assert stack.bound_module("a") is not None
        assert stack.bound_module("b") is not None

    def test_true_cycle_raises(self, system, stack):
        # A protocol that requires a service only itself provides, unbound:
        p = make_protocol("p", ["a"], requires=["b"])

        def factory(st, **kw):
            return p(st)

        system.registry.register("p", factory, provides=("a",), requires=("b",))
        # force the recursion to try to create 'p' again for service b
        system.registry._default_provider["b"] = "p"
        with pytest.raises(RequirementError, match="cyclic"):
            system.registry.create_module(stack, "p")

    def test_factory_kwargs_reach_top_level_only(self, system, stack):
        top = make_protocol("top", ["a"], requires=["b"])
        dep = make_protocol("dep", ["b"])
        system.registry.register(
            "top", lambda st, **kw: top(st, **kw), provides=("a",), requires=("b",)
        )
        system.registry.register(
            "dep", lambda st, **kw: dep(st, **kw), provides=("b",)
        )
        module = system.registry.create_module(
            stack, "top", factory_kwargs={"instance_tag": "x/v1"}
        )
        assert module.extra == {"instance_tag": "x/v1"}
        dep_module = stack.bound_module("b")
        assert dep_module.extra == {}

    def test_create_unbound(self, system, stack):
        cls = make_protocol("p", ["a"])
        system.registry.register("p", cls, provides=("a",))
        module = system.registry.create_module(stack, "p", bind=False)
        assert stack.bound_module("a") is None
        assert module.name in stack.modules
