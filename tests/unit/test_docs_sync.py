"""Keep the documentation layer in sync with the code it documents.

The scenario/campaign tables in ``docs/scenarios.md`` are **generated**
from the live library (``python -m repro.scenarios --write-docs``); the
tests here assert the embedded block is byte-identical to the
generator's output, so registering, renaming or even re-tuning a
scenario's fault schedule or switch plan without regenerating the page
fails the build.  The README must keep linking the docs tree.
"""

import pathlib

from repro.scenarios.docgen import BEGIN_MARKER, END_MARKER, generated_block
from repro.scenarios.library import CAMPAIGNS, SCENARIOS

REPO = pathlib.Path(__file__).resolve().parents[2]
DOCS = REPO / "docs"


def _doc(name: str) -> str:
    path = DOCS / name
    assert path.is_file(), f"docs/{name} is missing"
    return path.read_text(encoding="utf-8")


def _embedded_block() -> str:
    doc = _doc("scenarios.md")
    assert BEGIN_MARKER in doc and END_MARKER in doc, (
        "docs/scenarios.md lost its generated-catalogue markers"
    )
    return doc.split(BEGIN_MARKER, 1)[1].split(END_MARKER, 1)[0].strip("\n")


class TestScenarioCatalogue:
    def test_generated_block_is_current(self):
        """The embedded tables must match the library byte-for-byte.

        This covers names *and* content: every scenario's fault schedule
        and switch plan, and every campaign's member list.  Regenerate
        with ``python -m repro.scenarios --write-docs``.
        """
        assert _embedded_block() == generated_block(), (
            "docs/scenarios.md is stale; run "
            "`python -m repro.scenarios --write-docs`"
        )

    def test_every_scenario_documented(self):
        doc = _doc("scenarios.md")
        missing = [name for name in SCENARIOS if f"`{name}`" not in doc]
        assert not missing, f"scenarios missing from docs/scenarios.md: {missing}"

    def test_every_campaign_documented(self):
        doc = _doc("scenarios.md")
        missing = [name for name in CAMPAIGNS if f"`{name}`" not in doc]
        assert not missing, f"campaigns missing from docs/scenarios.md: {missing}"

    def test_generator_covers_whole_library(self):
        """Every registered scenario/campaign renders exactly one row."""
        block = generated_block()
        for name in SCENARIOS:
            assert f"| `{name}` |" in block
        for name in CAMPAIGNS:
            assert f"| `{name}` |" in block


class TestDocsTree:
    def test_docs_exist(self):
        for name in ("architecture.md", "kernel.md", "scenarios.md"):
            _doc(name)

    def test_readme_links_docs(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        for name in ("docs/architecture.md", "docs/kernel.md", "docs/scenarios.md"):
            assert name in readme, f"README.md does not link {name}"


class TestFuzzDocs:
    """The fuzzer/explorer are documented where users will look."""

    def test_scenarios_doc_has_fuzz_section(self):
        doc = _doc("scenarios.md")
        assert "## Fuzzing & model checking" in doc
        assert "python -m repro.fuzz" in doc
        assert "--explore" in doc
        assert "ddmin" in doc
        assert "tests/fixtures/fuzz/fuzz-1-2.json" in doc

    def test_readme_has_fuzz_section(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "### Fuzzing & model checking" in readme
        assert "python -m repro.fuzz" in readme

    def test_committed_reproducer_fixture_exists(self):
        assert (REPO / "tests" / "fixtures" / "fuzz" / "fuzz-1-2.json").is_file()


class TestAnalysisCatalogue:
    def test_generated_block_is_current(self):
        """The embedded rule table must match the registry byte-for-byte.

        Adding, renaming or re-scoping a rule without regenerating the
        page fails the build.  Regenerate with
        ``python -m repro.analysis --write-docs``.
        """
        from repro.analysis.docgen import (
            BEGIN_MARKER as A_BEGIN,
            END_MARKER as A_END,
            generated_block as analysis_block,
        )

        doc = _doc("analysis.md")
        assert A_BEGIN in doc and A_END in doc, (
            "docs/analysis.md lost its generated-catalogue markers"
        )
        embedded = doc.split(A_BEGIN, 1)[1].split(A_END, 1)[0].strip("\n")
        assert embedded == analysis_block(), (
            "docs/analysis.md is stale; run "
            "`python -m repro.analysis --write-docs`"
        )

    def test_every_rule_documented_in_prose(self):
        """Each rule also has a prose entry, not just a table row."""
        from repro.analysis import ALL_RULES

        doc = _doc("analysis.md")
        missing = [code for code in ALL_RULES if f"**{code} " not in doc]
        assert not missing, f"rules missing prose in docs/analysis.md: {missing}"

    def test_readme_links_analysis_docs(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "docs/analysis.md" in readme, "README.md does not link docs/analysis.md"
