"""Keep the documentation layer in sync with the code it documents.

``docs/scenarios.md`` is a hand-written catalogue of the scenario
library; this test fails the build the moment someone registers a
scenario or campaign without documenting it (or renames one and leaves a
stale entry behind).  The README must keep linking the docs tree.
"""

import pathlib
import re

from repro.scenarios.library import CAMPAIGNS, SCENARIOS

REPO = pathlib.Path(__file__).resolve().parents[2]
DOCS = REPO / "docs"


def _doc(name: str) -> str:
    path = DOCS / name
    assert path.is_file(), f"docs/{name} is missing"
    return path.read_text(encoding="utf-8")


class TestScenarioCatalogue:
    def test_every_scenario_documented(self):
        doc = _doc("scenarios.md")
        missing = [name for name in SCENARIOS if f"`{name}`" not in doc]
        assert not missing, f"scenarios missing from docs/scenarios.md: {missing}"

    def test_every_campaign_documented(self):
        doc = _doc("scenarios.md")
        missing = [name for name in CAMPAIGNS if f"`{name}`" not in doc]
        assert not missing, f"campaigns missing from docs/scenarios.md: {missing}"

    def test_no_stale_scenario_rows(self):
        """Every scenario-looking row in the table exists in the library."""
        doc = _doc("scenarios.md")
        table = doc.split("## Scenarios", 1)[1].split("## Campaigns", 1)[0]
        documented = re.findall(r"^\| `([a-z0-9-]+)` \|", table, flags=re.M)
        stale = [name for name in documented if name not in SCENARIOS]
        assert not stale, f"docs/scenarios.md documents unknown scenarios: {stale}"
        # The table (not just prose) must cover the whole library too.
        assert set(documented) == set(SCENARIOS)


class TestDocsTree:
    def test_docs_exist(self):
        for name in ("architecture.md", "kernel.md", "scenarios.md"):
            _doc(name)

    def test_readme_links_docs(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        for name in ("docs/architecture.md", "docs/kernel.md", "docs/scenarios.md"):
            assert name in readme, f"README.md does not link {name}"
