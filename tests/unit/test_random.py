"""Unit tests: deterministic named random streams."""

from repro.sim.random import RngRegistry, stable_hash64


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash64("net.latency") == stable_hash64("net.latency")

    def test_distinct_names_distinct_hashes(self):
        names = [f"component-{i}" for i in range(100)]
        assert len({stable_hash64(n) for n in names}) == 100

    def test_64_bit_range(self):
        assert 0 <= stable_hash64("x") < 2**64


class TestRngRegistry:
    def test_same_name_same_stream_object(self):
        reg = RngRegistry(seed=7)
        assert reg.stream("a") is reg.stream("a")

    def test_same_seed_same_draws(self):
        a = RngRegistry(seed=7).stream("net").random(10)
        b = RngRegistry(seed=7).stream("net").random(10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = RngRegistry(seed=7).stream("net").random(10)
        b = RngRegistry(seed=8).stream("net").random(10)
        assert not (a == b).all()

    def test_streams_are_independent_of_creation_order(self):
        reg1 = RngRegistry(seed=7)
        reg1.stream("first").random(1000)  # consume a lot from another stream
        a = reg1.stream("target").random(5)
        reg2 = RngRegistry(seed=7)
        b = reg2.stream("target").random(5)
        assert (a == b).all()

    def test_fork_is_deterministic(self):
        a = RngRegistry(seed=7).fork("m0").stream("s").random(5)
        b = RngRegistry(seed=7).fork("m0").stream("s").random(5)
        assert (a == b).all()

    def test_fork_differs_from_parent(self):
        parent = RngRegistry(seed=7)
        child = parent.fork("m0")
        assert not (parent.stream("s").random(5) == child.stream("s").random(5)).all()
