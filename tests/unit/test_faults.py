"""Unit tests: the FaultInjector (crash/recover/partition/link faults)."""

import pytest

from repro.errors import SimulationError
from repro.net import SimNetwork, SwitchedLan
from repro.sim import ConstantLatency, FaultInjector, Machine, Simulator


def make_world(n=3, seed=7):
    sim = Simulator(seed=seed)
    machines = [Machine(sim, i) for i in range(n)]
    net = SimNetwork(sim, machines, SwitchedLan(latency=ConstantLatency(1e-4)))
    return sim, machines, net


class TestCrashRecover:
    def test_scheduled_crash_and_recover_fire_and_record(self):
        sim, machines, net = make_world()
        inj = FaultInjector(sim, machines, network=net)
        inj.crash_at(1.0, 2)
        inj.recover_at(2.0, 2)
        sim.run(until=3.0)
        assert not machines[2].crashed
        assert machines[2].ever_crashed
        assert [(r.time, r.kind) for r in inj.records] == [
            (1.0, "crash"),
            (2.0, "recover"),
        ]

    def test_crash_is_idempotent_and_recorded_once(self):
        sim, machines, _net = make_world()
        inj = FaultInjector(sim, machines)
        inj.crash_at(1.0, 0)
        inj.crash_at(1.5, 0)  # already down: no second record
        sim.run(until=2.0)
        assert len(inj.records) == 1

    def test_recover_of_live_machine_is_noop(self):
        sim, machines, _net = make_world()
        inj = FaultInjector(sim, machines)
        inj.recover_at(1.0, 0)
        sim.run(until=2.0)
        assert inj.records == []

    def test_unknown_machine_rejected(self):
        sim, machines, _net = make_world()
        inj = FaultInjector(sim, machines)
        with pytest.raises(SimulationError):
            inj.crash(99)

    def test_crashed_ever_reports_first_crash_time(self):
        sim, machines, _net = make_world()
        inj = FaultInjector(sim, machines)
        inj.crash_at(1.0, 1)
        inj.recover_at(2.0, 1)
        inj.crash_at(3.0, 1)
        sim.run(until=4.0)
        assert inj.crashed_ever() == {1: 1.0}

    def test_on_fault_hook_sees_index_and_record(self):
        sim, machines, _net = make_world()
        inj = FaultInjector(sim, machines)
        seen = []
        inj.on_fault.append(lambda i, r: seen.append((i, r.kind, r.time)))
        inj.crash_at(1.0, 0)
        inj.crash_at(2.0, 1)
        sim.run(until=3.0)
        assert seen == [(0, "crash", 1.0), (1, "crash", 2.0)]


class TestNetworkFaults:
    def test_partition_splits_groups_pairwise(self):
        sim, machines, net = make_world(n=4)
        inj = FaultInjector(sim, machines, network=net)
        inj.partition_at(1.0, (0, 1), (2, 3))
        sim.run(until=1.5)
        assert net.is_partitioned(0, 2)
        assert net.is_partitioned(1, 3)
        assert not net.is_partitioned(0, 1)
        assert not net.is_partitioned(2, 3)

    def test_heal_removes_partitions_and_records(self):
        sim, machines, net = make_world(n=4)
        inj = FaultInjector(sim, machines, network=net)
        inj.partition_at(1.0, (0,), (1, 2, 3))
        inj.heal_at(2.0)
        sim.run(until=3.0)
        assert not net.is_partitioned(0, 1)
        assert [r.kind for r in inj.records] == ["partition", "heal"]

    def test_impair_and_clear_link(self):
        sim, machines, net = make_world()
        inj = FaultInjector(sim, machines, network=net)
        inj.impair_link_at(1.0, 0, 1, loss_rate=0.5)
        inj.clear_link_at(2.0, 0, 1)
        sim.run(until=1.5)
        assert net.link_impairment(0, 1).loss_rate == 0.5
        assert net.link_impairment(1, 0).loss_rate == 0.5  # symmetric
        sim.run(until=3.0)
        assert net.link_impairment(0, 1) is None

    def test_latency_spike_sets_and_clears(self):
        sim, machines, net = make_world()
        inj = FaultInjector(sim, machines, network=net)
        inj.latency_spike_at(1.0, 0.005, duration=1.0)
        sim.run(until=1.5)
        assert net.extra_latency == 0.005
        sim.run(until=3.0)
        assert net.extra_latency == 0.0

    def test_network_faults_require_network(self):
        sim, machines, _net = make_world()
        inj = FaultInjector(sim, machines, network=None)
        with pytest.raises(SimulationError):
            inj.partition((0,), (1, 2))


class TestRandomSchedules:
    def test_random_crashes_deterministic_per_seed(self):
        def schedule(seed):
            sim, machines, _net = make_world(n=5, seed=seed)
            inj = FaultInjector(sim, machines)
            return inj.random_crashes(3, start=1.0, window=2.0)

        assert schedule(42) == schedule(42)
        assert schedule(42) != schedule(43)

    def test_random_crashes_distinct_victims_in_window(self):
        sim, machines, _net = make_world(n=5)
        inj = FaultInjector(sim, machines)
        plan = inj.random_crashes(3, start=1.0, window=2.0)
        victims = [m for _t, m in plan]
        assert len(set(victims)) == 3
        assert all(1.0 <= t < 3.0 for t, _m in plan)
        sim.run(until=4.0)
        assert sum(m.crashed for m in machines) == 3

    def test_random_crashes_with_recovery(self):
        sim, machines, _net = make_world(n=4)
        inj = FaultInjector(sim, machines)
        inj.random_crashes(2, start=0.5, window=1.0, recover_after=0.5)
        sim.run(until=3.0)
        assert all(not m.crashed for m in machines)
        assert sum(m.ever_crashed for m in machines) == 2

    def test_random_crashes_rejects_oversized_count(self):
        sim, machines, _net = make_world(n=3)
        inj = FaultInjector(sim, machines)
        with pytest.raises(SimulationError):
            inj.random_crashes(4, start=0.0, window=1.0)

    def test_injector_stream_does_not_perturb_other_streams(self):
        def draw(with_faults):
            sim, machines, _net = make_world(seed=5)
            inj = FaultInjector(sim, machines)
            if with_faults:
                inj.random_crashes(2, start=0.5, window=1.0)
            sim.run(until=2.0)
            return list(sim.rng.stream("app").random(4))

        assert draw(True) == draw(False)

    def test_churn_cycles(self):
        sim, machines, _net = make_world(n=3)
        inj = FaultInjector(sim, machines)
        inj.churn([0, 1], start=1.0, period=1.0, downtime=0.4, cycles=2)
        sim.run(until=5.0)
        assert all(not m.crashed for m in machines[:2])
        assert machines[0].crash_count == 2
        assert machines[1].crash_count == 2
        assert machines[2].crash_count == 0

    def test_churn_rejects_downtime_ge_period(self):
        sim, machines, _net = make_world()
        inj = FaultInjector(sim, machines)
        with pytest.raises(SimulationError):
            inj.churn([0], start=0.0, period=1.0, downtime=1.0)


class TestOverlappingSpikes:
    def test_overlapping_latency_spikes_compose(self):
        sim, machines, net = make_world()
        inj = FaultInjector(sim, machines, network=net)
        inj.latency_spike_at(1.0, 0.005, duration=2.0)   # 1.0 .. 3.0
        inj.latency_spike_at(2.0, 0.010, duration=2.0)   # 2.0 .. 4.0
        sim.run(until=2.5)
        assert net.extra_latency == pytest.approx(0.015)
        sim.run(until=3.5)      # first spike ended, second still active
        assert net.extra_latency == pytest.approx(0.010)
        sim.run(until=4.5)
        assert net.extra_latency == 0.0

    def test_immediate_and_scheduled_spikes_share_additive_semantics(self):
        """Satellite regression: the immediate form used to *set* the
        network-wide latency absolutely while scheduled spikes were
        additive, so mixing them corrupted the revert (and the old
        ``max(0, ...)`` clamp silently hid the corruption)."""
        sim, machines, net = make_world()
        inj = FaultInjector(sim, machines, network=net)
        inj.latency_spike_at(1.0, 0.005, duration=2.0)   # 1.0 .. 3.0
        sim.run(until=1.5)
        inj.latency_spike(0.010, duration=1.0)           # 1.5 .. 2.5
        assert net.extra_latency == pytest.approx(0.015)  # composes
        sim.run(until=2.7)      # immediate spike reverted its own delta
        assert net.extra_latency == pytest.approx(0.005)
        sim.run(until=3.5)      # scheduled spike reverted too: clean zero
        assert net.extra_latency == 0.0

    def test_spike_records_carry_delta_and_total(self):
        sim, machines, net = make_world()
        inj = FaultInjector(sim, machines, network=net)
        inj.latency_spike_at(1.0, 0.005, duration=1.0)
        sim.run(until=3.0)
        details = [r.detail for r in inj.records if r.kind == "latency-spike"]
        assert details == [(0.005, 0.005), (-0.005, 0.0)]

    def test_stale_revert_does_not_cancel_spikes_started_after_a_clear(self):
        """A scheduled revert whose spike was already wiped by
        clear_latency_spikes must not eat a *newer* spike's delta."""
        sim, machines, net = make_world()
        inj = FaultInjector(sim, machines, network=net)
        inj.latency_spike_at(1.0, 0.005, duration=2.0)   # revert due t=3.0
        sim.run(until=1.5)
        inj.clear_latency_spikes()                        # wipes the 0.005
        sim.run(until=2.0)
        inj.latency_spike(0.010, duration=2.0)           # 2.0 .. 4.0
        sim.run(until=3.5)   # the stale t=3.0 revert must be a no-op
        assert net.extra_latency == pytest.approx(0.010)
        sim.run(until=4.5)   # the new spike's own revert still works
        assert net.extra_latency == 0.0

    def test_clear_latency_spikes_reverts_everything(self):
        sim, machines, net = make_world()
        inj = FaultInjector(sim, machines, network=net)
        inj.latency_spike(0.005)
        inj.latency_spike(0.003)
        assert net.extra_latency == pytest.approx(0.008)
        inj.clear_latency_spikes()
        assert net.extra_latency == 0.0
        # A stale scheduled revert after the wholesale clear is a no-op.
        inj.latency_spike_at(1.0, 0.002, duration=0.5)
        sim.run(until=1.2)
        inj.clear_latency_spikes()
        sim.run(until=2.0)
        assert net.extra_latency == 0.0


class TestOneWayPartitionFaults:
    def test_partition_oneway_blocks_and_records(self):
        sim, machines, net = make_world(n=4)
        inj = FaultInjector(sim, machines, network=net)
        inj.partition_oneway_at(1.0, (2, 3), (0, 1))
        sim.run(until=1.5)
        assert net.is_partitioned(2, 0)
        assert net.is_partitioned(3, 1)
        assert not net.is_partitioned(0, 2)
        assert not net.is_partitioned(1, 3)
        record = inj.records[0]
        assert record.kind == "partition-oneway"
        assert record.detail == ((2, 3), (0, 1))
        assert record.to_dict()["detail"] == [(2, 3), (0, 1)]

    def test_heal_clears_oneway(self):
        sim, machines, net = make_world(n=3)
        inj = FaultInjector(sim, machines, network=net)
        inj.partition_oneway_at(1.0, (0,), (1, 2))
        inj.heal_at(2.0)
        sim.run(until=2.5)
        assert not net.is_partitioned(0, 1)
        assert [r.kind for r in inj.records] == ["partition-oneway", "heal"]

    def test_requires_network(self):
        sim, machines, _net = make_world()
        inj = FaultInjector(sim, machines, network=None)
        with pytest.raises(SimulationError):
            inj.partition_oneway((0,), (1,))
