"""Unit tests: the FaultInjector (crash/recover/partition/link faults)."""

import pytest

from repro.errors import SimulationError
from repro.net import SimNetwork, SwitchedLan
from repro.sim import ConstantLatency, FaultInjector, Machine, Simulator


def make_world(n=3, seed=7):
    sim = Simulator(seed=seed)
    machines = [Machine(sim, i) for i in range(n)]
    net = SimNetwork(sim, machines, SwitchedLan(latency=ConstantLatency(1e-4)))
    return sim, machines, net


class TestCrashRecover:
    def test_scheduled_crash_and_recover_fire_and_record(self):
        sim, machines, net = make_world()
        inj = FaultInjector(sim, machines, network=net)
        inj.crash_at(1.0, 2)
        inj.recover_at(2.0, 2)
        sim.run(until=3.0)
        assert not machines[2].crashed
        assert machines[2].ever_crashed
        assert [(r.time, r.kind) for r in inj.records] == [
            (1.0, "crash"),
            (2.0, "recover"),
        ]

    def test_crash_is_idempotent_and_recorded_once(self):
        sim, machines, _net = make_world()
        inj = FaultInjector(sim, machines)
        inj.crash_at(1.0, 0)
        inj.crash_at(1.5, 0)  # already down: no second record
        sim.run(until=2.0)
        assert len(inj.records) == 1

    def test_recover_of_live_machine_is_noop(self):
        sim, machines, _net = make_world()
        inj = FaultInjector(sim, machines)
        inj.recover_at(1.0, 0)
        sim.run(until=2.0)
        assert inj.records == []

    def test_unknown_machine_rejected(self):
        sim, machines, _net = make_world()
        inj = FaultInjector(sim, machines)
        with pytest.raises(SimulationError):
            inj.crash(99)

    def test_crashed_ever_reports_first_crash_time(self):
        sim, machines, _net = make_world()
        inj = FaultInjector(sim, machines)
        inj.crash_at(1.0, 1)
        inj.recover_at(2.0, 1)
        inj.crash_at(3.0, 1)
        sim.run(until=4.0)
        assert inj.crashed_ever() == {1: 1.0}

    def test_on_fault_hook_sees_index_and_record(self):
        sim, machines, _net = make_world()
        inj = FaultInjector(sim, machines)
        seen = []
        inj.on_fault.append(lambda i, r: seen.append((i, r.kind, r.time)))
        inj.crash_at(1.0, 0)
        inj.crash_at(2.0, 1)
        sim.run(until=3.0)
        assert seen == [(0, "crash", 1.0), (1, "crash", 2.0)]


class TestNetworkFaults:
    def test_partition_splits_groups_pairwise(self):
        sim, machines, net = make_world(n=4)
        inj = FaultInjector(sim, machines, network=net)
        inj.partition_at(1.0, (0, 1), (2, 3))
        sim.run(until=1.5)
        assert net.is_partitioned(0, 2)
        assert net.is_partitioned(1, 3)
        assert not net.is_partitioned(0, 1)
        assert not net.is_partitioned(2, 3)

    def test_heal_removes_partitions_and_records(self):
        sim, machines, net = make_world(n=4)
        inj = FaultInjector(sim, machines, network=net)
        inj.partition_at(1.0, (0,), (1, 2, 3))
        inj.heal_at(2.0)
        sim.run(until=3.0)
        assert not net.is_partitioned(0, 1)
        assert [r.kind for r in inj.records] == ["partition", "heal"]

    def test_impair_and_clear_link(self):
        sim, machines, net = make_world()
        inj = FaultInjector(sim, machines, network=net)
        inj.impair_link_at(1.0, 0, 1, loss_rate=0.5)
        inj.clear_link_at(2.0, 0, 1)
        sim.run(until=1.5)
        assert net.link_impairment(0, 1).loss_rate == 0.5
        assert net.link_impairment(1, 0).loss_rate == 0.5  # symmetric
        sim.run(until=3.0)
        assert net.link_impairment(0, 1) is None

    def test_latency_spike_sets_and_clears(self):
        sim, machines, net = make_world()
        inj = FaultInjector(sim, machines, network=net)
        inj.latency_spike_at(1.0, 0.005, duration=1.0)
        sim.run(until=1.5)
        assert net.extra_latency == 0.005
        sim.run(until=3.0)
        assert net.extra_latency == 0.0

    def test_network_faults_require_network(self):
        sim, machines, _net = make_world()
        inj = FaultInjector(sim, machines, network=None)
        with pytest.raises(SimulationError):
            inj.partition((0,), (1, 2))


class TestRandomSchedules:
    def test_random_crashes_deterministic_per_seed(self):
        def schedule(seed):
            sim, machines, _net = make_world(n=5, seed=seed)
            inj = FaultInjector(sim, machines)
            return inj.random_crashes(3, start=1.0, window=2.0)

        assert schedule(42) == schedule(42)
        assert schedule(42) != schedule(43)

    def test_random_crashes_distinct_victims_in_window(self):
        sim, machines, _net = make_world(n=5)
        inj = FaultInjector(sim, machines)
        plan = inj.random_crashes(3, start=1.0, window=2.0)
        victims = [m for _t, m in plan]
        assert len(set(victims)) == 3
        assert all(1.0 <= t < 3.0 for t, _m in plan)
        sim.run(until=4.0)
        assert sum(m.crashed for m in machines) == 3

    def test_random_crashes_with_recovery(self):
        sim, machines, _net = make_world(n=4)
        inj = FaultInjector(sim, machines)
        inj.random_crashes(2, start=0.5, window=1.0, recover_after=0.5)
        sim.run(until=3.0)
        assert all(not m.crashed for m in machines)
        assert sum(m.ever_crashed for m in machines) == 2

    def test_random_crashes_rejects_oversized_count(self):
        sim, machines, _net = make_world(n=3)
        inj = FaultInjector(sim, machines)
        with pytest.raises(SimulationError):
            inj.random_crashes(4, start=0.0, window=1.0)

    def test_injector_stream_does_not_perturb_other_streams(self):
        def draw(with_faults):
            sim, machines, _net = make_world(seed=5)
            inj = FaultInjector(sim, machines)
            if with_faults:
                inj.random_crashes(2, start=0.5, window=1.0)
            sim.run(until=2.0)
            return list(sim.rng.stream("app").random(4))

        assert draw(True) == draw(False)

    def test_churn_cycles(self):
        sim, machines, _net = make_world(n=3)
        inj = FaultInjector(sim, machines)
        inj.churn([0, 1], start=1.0, period=1.0, downtime=0.4, cycles=2)
        sim.run(until=5.0)
        assert all(not m.crashed for m in machines[:2])
        assert machines[0].crash_count == 2
        assert machines[1].crash_count == 2
        assert machines[2].crash_count == 0

    def test_churn_rejects_downtime_ge_period(self):
        sim, machines, _net = make_world()
        inj = FaultInjector(sim, machines)
        with pytest.raises(SimulationError):
            inj.churn([0], start=0.0, period=1.0, downtime=1.0)


class TestOverlappingSpikes:
    def test_overlapping_latency_spikes_compose(self):
        sim, machines, net = make_world()
        inj = FaultInjector(sim, machines, network=net)
        inj.latency_spike_at(1.0, 0.005, duration=2.0)   # 1.0 .. 3.0
        inj.latency_spike_at(2.0, 0.010, duration=2.0)   # 2.0 .. 4.0
        sim.run(until=2.5)
        assert net.extra_latency == pytest.approx(0.015)
        sim.run(until=3.5)      # first spike ended, second still active
        assert net.extra_latency == pytest.approx(0.010)
        sim.run(until=4.5)
        assert net.extra_latency == 0.0
