"""Unit tests for the ddmin shrinker (synthetic predicates: no simulator).

The shrinker's contract is checked against cheap synthetic predicates so
minimality, determinism and the no-violation passthrough are pinned
without paying for scenario runs; the integration suite exercises the
same code over real violating schedules.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro.errors import ScenarioError
from repro.fuzz.shrink import (
    ddmin,
    guard_sensitivity_predicate,
    shrink_spec,
)
from repro.scenarios.spec import Crash, Heal, Partition, ScenarioSpec
from repro.scenarios.switchplan import SwitchAfterSwitch, SwitchAt


# --------------------------------------------------------------------------- #
# ddmin over plain sequences
# --------------------------------------------------------------------------- #
class TestDdmin:
    def test_finds_exact_failure_inducing_subset(self):
        needed = {2, 5, 7}
        result = ddmin(list(range(10)), lambda c: needed <= set(c))
        assert result == [2, 5, 7]  # minimal AND order-preserving

    def test_result_is_one_minimal(self):
        needed = {1, 3, 4, 8}
        test = lambda c: needed <= set(c)  # noqa: E731
        result = ddmin(list(range(10)), test)
        assert test(result)
        for i in range(len(result)):
            assert not test(result[:i] + result[i + 1 :])

    def test_deterministic(self):
        items = list(range(20))
        test = lambda c: {0, 9, 13, 19} <= set(c)  # noqa: E731
        assert ddmin(items, test) == ddmin(items, test)

    def test_empty_passing_candidate_wins(self):
        # The failure needs nothing: the minimum is the empty sequence.
        assert ddmin([1, 2, 3], lambda c: True) == []

    def test_irreducible_input_survives_whole(self):
        items = [1, 2, 3, 4, 5]
        result = ddmin(items, lambda c: len(c) == len(items))
        assert result == items

    def test_single_element(self):
        assert ddmin([7], lambda c: 7 in c) == [7]
        assert ddmin([], lambda c: True) == []

    def test_counts_predicate_calls_are_bounded(self):
        calls = []

        def test(candidate):
            calls.append(1)
            return {4} <= set(candidate)

        ddmin(list(range(32)), test)
        assert len(calls) < 200  # ddmin is polynomial, not exhaustive


# --------------------------------------------------------------------------- #
# Spec-level shrinking
# --------------------------------------------------------------------------- #
def _spec(**overrides) -> ScenarioSpec:
    base = dict(
        name="shrink-me",
        n=5,
        guard_change_sn=False,
        faults=(
            Crash(at=1.0, machine=1),
            Partition(at=2.0, groups=((0,), (1, 2, 3, 4))),
            Heal(at=3.0),
            Crash(at=4.0, machine=2),
        ),
        switches=(
            SwitchAt(protocol="abcast-ct", at=2.1, from_stack=3),
            SwitchAfterSwitch(protocol="abcast-ct", version=1, from_stack=0),
        ),
    )
    base.update(overrides)
    return ScenarioSpec(**base)


class TestShrinkSpec:
    def test_no_violation_passthrough(self):
        spec = _spec()
        assert shrink_spec(spec, lambda s: False) is spec

    def test_shrinks_faults_and_switches_to_predicate_core(self):
        # Synthetic "violation": needs the partition, its heal, and the
        # chained switch — everything else must be shrunk away.
        def predicate(s: ScenarioSpec) -> bool:
            kinds = [type(a) for a in s.faults]
            return (
                Partition in kinds
                and Heal in kinds
                and any(isinstance(x, SwitchAfterSwitch) for x in s.switches)
            )

        shrunk = shrink_spec(_spec(), predicate)
        assert [type(a) for a in shrunk.faults] == [Partition, Heal]
        assert [type(s) for s in shrunk.switches] == [SwitchAfterSwitch]

    def test_shrinks_member_count_to_reference_floor(self):
        # Predicate is size-indifferent; the only n bound is the highest
        # machine the surviving schedule references.
        def predicate(s: ScenarioSpec) -> bool:
            return any(isinstance(a, Crash) and a.machine == 1 for a in s.faults)

        shrunk = shrink_spec(_spec(), predicate)
        assert [type(a) for a in shrunk.faults] == [Crash]
        assert shrunk.switches == ()
        assert shrunk.n == 2  # machine 1 referenced => n can drop to 2, not 1

    def test_never_produces_invalid_specs(self):
        seen = []

        def predicate(s: ScenarioSpec) -> bool:
            # Every candidate the shrinker builds must be constructible
            # (frozen dataclass validation) and internally consistent.
            seen.append(s)
            return any(isinstance(a, Partition) for a in s.faults)

        shrink_spec(_spec(), predicate)
        for candidate in seen:
            assert candidate.n >= 1

    def test_deterministic(self):
        def predicate(s: ScenarioSpec) -> bool:
            return any(isinstance(a, Heal) for a in s.faults)

        assert shrink_spec(_spec(), predicate) == shrink_spec(_spec(), predicate)

    def test_fixpoint_interleaves_axes(self):
        # The n axis is gated on the fault/switch axes: only once every
        # machine-referencing action is gone can n bottom out.
        def predicate(s: ScenarioSpec) -> bool:
            return any(isinstance(a, Heal) for a in s.faults)

        shrunk = shrink_spec(_spec(), predicate)
        assert shrunk.faults == (Heal(at=3.0),)
        assert shrunk.switches == ()
        # Heal references no machine at all: n bottoms out at 1.
        assert shrunk.n == 1


class TestGuardSensitivityPredicate:
    def test_requires_unguarded_spec(self):
        wrapped = guard_sensitivity_predicate(lambda s: True)
        assert not wrapped(_spec(guard_change_sn=True))

    def test_requires_violation_and_clean_guarded_twin(self):
        # Violates whenever a Partition survives; guard-sensitive only
        # when the Heal also survives (modelling "unhealed partitions
        # violate guarded too").
        def predicate(s: ScenarioSpec) -> bool:
            has_partition = any(isinstance(a, Partition) for a in s.faults)
            has_heal = any(isinstance(a, Heal) for a in s.faults)
            if s.guard_change_sn:
                return has_partition and not has_heal
            return has_partition

        wrapped = guard_sensitivity_predicate(predicate)
        spec = _spec()
        assert wrapped(spec)  # partition + heal: violates, guarded twin clean
        no_heal = replace(
            spec, faults=tuple(a for a in spec.faults if not isinstance(a, Heal))
        )
        assert predicate(no_heal)  # still a violation...
        assert not wrapped(no_heal)  # ...but no longer guard-sensitive
        shrunk = shrink_spec(spec, wrapped)
        kinds = [type(a) for a in shrunk.faults]
        assert Partition in kinds and Heal in kinds  # Heal survives shrinking


def test_scenario_error_on_bad_budget():
    from repro.fuzz.generator import FuzzConfig

    with pytest.raises(ScenarioError):
        FuzzConfig(budget=0)
