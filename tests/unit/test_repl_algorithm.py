"""Unit tests: Algorithm 1, line by line, against a scripted ABcast.

The fake ABcast module gives the tests total control over delivery
content and order, so every branch of the replacement algorithm is
exercised deterministically — including the concurrent-change anomaly of
the paper-literal variant documented in DESIGN.md §4.
"""

import pytest

from repro.dpu.repl import NEW_ABCAST, NIL, ReplAbcastModule
from repro.errors import ReplacementError
from repro.kernel import Module, System, WellKnown


class FakeAbcast(Module):
    """An ABcast provider the test drives by hand.

    ``abcast`` calls are captured in :attr:`sent`; the test delivers
    frames explicitly with :meth:`deliver` (to every instance of the
    protocol that is currently in a stack, in stack order — mimicking a
    totally ordered delivery)."""

    PROVIDES = (WellKnown.ABCAST,)
    PROTOCOL = "fake-abcast"

    instances: list = []  # class-level: all live instances, all stacks

    def __init__(self, stack, **kwargs):
        super().__init__(stack)
        self.sent = []
        self.export_call(WellKnown.ABCAST, "abcast", self.sent_append)
        FakeAbcast.instances.append(self)

    def sent_append(self, frame, size):
        self.sent.append(frame)

    def deliver(self, origin, frame, size=64):
        self.respond(WellKnown.ABCAST, "adeliver", origin, frame, size)


class AppSink(Module):
    REQUIRES = (WellKnown.R_ABCAST,)
    PROTOCOL = "sink"

    def __init__(self, stack):
        super().__init__(stack)
        self.delivered = []
        self.subscribe(
            WellKnown.R_ABCAST,
            "adeliver",
            lambda o, m, s: self.delivered.append(m),
        )


@pytest.fixture(autouse=True)
def _clear_fake_instances():
    FakeAbcast.instances = []
    yield
    FakeAbcast.instances = []


def build(guard=True, policy="drop", creation_cost=0.0, dedup=False):
    sys_ = System(n=1, seed=0)
    st = sys_.stack(0)
    sys_.registry.register(
        "fake-abcast",
        lambda stack, **kw: FakeAbcast(stack, **kw),
        provides=(WellKnown.ABCAST,),
        default_for=(WellKnown.ABCAST,),
    )
    fake = sys_.registry.create_module(st, "fake-abcast")
    repl = ReplAbcastModule(
        st,
        sys_.registry,
        initial_protocol="fake-abcast",
        guard_change_sn=guard,
        reissue_policy=policy,
        creation_cost=creation_cost,
        dedup_deliveries=dedup,
    )
    st.add_module(repl)
    app = AppSink(st)
    st.add_module(app)
    return sys_, st, fake, repl, app


class TestOrdinaryPath:
    def test_rabcast_adds_to_undelivered_and_forwards(self):
        """Lines 7-9."""
        sys_, st, fake, repl, app = build()
        app.call(WellKnown.R_ABCAST, "abcast", "m1", 64)
        sys_.run()
        assert repl.undelivered_count == 1
        assert len(fake.sent) == 1
        tag, sn, rid, m, size = fake.sent[0]
        assert (tag, sn, m) == (NIL, 0, "m1")

    def test_matching_sn_delivers_and_clears_undelivered(self):
        """Lines 17-21, local message."""
        sys_, st, fake, repl, app = build()
        app.call(WellKnown.R_ABCAST, "abcast", "m1", 64)
        sys_.run()
        fake.deliver(0, fake.sent[0])
        sys_.run()
        assert app.delivered == ["m1"]
        assert repl.undelivered_count == 0

    def test_remote_message_delivered_without_undelivered_entry(self):
        """Line 19's membership test only gates the removal, not rAdeliver."""
        sys_, st, fake, repl, app = build()
        fake.deliver(1, (NIL, 0, (1, 0), "remote", 64))
        sys_.run()
        assert app.delivered == ["remote"]

    def test_stale_sn_discarded(self):
        """Line 18."""
        sys_, st, fake, repl, app = build()
        repl.seq_number = 3
        fake.deliver(1, (NIL, 2, (1, 0), "old", 64))
        sys_.run()
        assert app.delivered == []
        assert repl.counters.get("stale_messages_discarded") == 1


class TestChangePath:
    def test_change_abcasts_request_through_current_protocol(self):
        """Lines 5-6."""
        sys_, st, fake, repl, app = build()
        app.call(WellKnown.R_ABCAST, "change_protocol", "fake-abcast")
        sys_.run()
        tag, sn, rid, prot = fake.sent[0]
        assert (tag, sn, prot) == (NEW_ABCAST, 0, "fake-abcast")

    def test_unknown_protocol_fails_fast(self):
        sys_, st, fake, repl, app = build()
        app.call(WellKnown.R_ABCAST, "change_protocol", "ghost")
        with pytest.raises(Exception):
            sys_.run()

    def test_switch_increments_rebinds_and_reissues(self):
        """Lines 10-16."""
        sys_, st, fake, repl, app = build()
        app.call(WellKnown.R_ABCAST, "abcast", "m1", 64)
        app.call(WellKnown.R_ABCAST, "abcast", "m2", 64)
        sys_.run()
        old = st.bound_module(WellKnown.ABCAST)
        fake.deliver(1, (NEW_ABCAST, 0, (1, 0), "fake-abcast"))
        sys_.run()
        assert repl.seq_number == 1                            # line 11
        new = st.bound_module(WellKnown.ABCAST)
        assert new is not old                                  # lines 12-14
        assert old.name in st.modules                          # unbind ≠ remove
        # lines 15-16: both undelivered messages re-issued with new sn
        reissues = [f for f in new.sent if f[0] == NIL]
        assert [(f[1], f[3]) for f in reissues] == [(1, "m1"), (1, "m2")]
        assert repl.counters.get("reissues") == 2

    def test_reissued_message_delivered_once(self):
        """Integrity across the switch: old-sn copy discarded, new-sn
        copy delivered."""
        sys_, st, fake, repl, app = build()
        app.call(WellKnown.R_ABCAST, "abcast", "m1", 64)
        sys_.run()
        original = fake.sent[0]
        fake.deliver(1, (NEW_ABCAST, 0, (1, 0), "fake-abcast"))
        sys_.run()
        new = st.bound_module(WellKnown.ABCAST)
        # old protocol delivers the original late -> discarded
        fake.deliver(0, original)
        sys_.run()
        assert app.delivered == []
        # new protocol delivers the reissue -> delivered exactly once
        new.deliver(0, new.sent[0])
        sys_.run()
        assert app.delivered == ["m1"]

    def test_delivered_message_not_reissued(self):
        """Line 19-20 removal prevents re-issue of delivered messages."""
        sys_, st, fake, repl, app = build()
        app.call(WellKnown.R_ABCAST, "abcast", "m1", 64)
        sys_.run()
        fake.deliver(0, fake.sent[0])
        sys_.run()
        fake.deliver(1, (NEW_ABCAST, 0, (1, 0), "fake-abcast"))
        sys_.run()
        new = st.bound_module(WellKnown.ABCAST)
        assert [f for f in new.sent if f[0] == NIL] == []

    def test_switch_with_creation_cost_blocks_calls_until_bind(self):
        sys_, st, fake, repl, app = build(creation_cost=0.050)
        fake.deliver(1, (NEW_ABCAST, 0, (1, 0), "fake-abcast"))
        sys_.run(until=0.001)
        assert st.bound_module(WellKnown.ABCAST) is None  # gap is real
        app.call(WellKnown.R_ABCAST, "abcast", "during-gap", 64)
        sys_.run(until=0.010)
        assert st.blocked_call_count(WellKnown.ABCAST) == 1
        sys_.run()  # creation completes, blocked call released
        new = st.bound_module(WellKnown.ABCAST)
        assert new is not None
        assert any(f[0] == NIL and f[3] == "during-gap" for f in new.sent)

    def test_message_sent_inside_creation_gap_not_reissued(self):
        """Regression (found by hypothesis): a message ABcast during the
        unbind→bind gap already carries the new sn and its blocked call
        is released at bind; reissuing it too would deliver it twice."""
        sys_, st, fake, repl, app = build(creation_cost=0.050)
        fake.deliver(1, (NEW_ABCAST, 0, (1, 0), "fake-abcast"))
        sys_.run(until=0.001)
        app.call(WellKnown.R_ABCAST, "abcast", "gap-msg", 64)
        sys_.run()  # switch completes, blocked call released
        new = st.bound_module(WellKnown.ABCAST)
        frames = [f for f in new.sent if f[0] == NIL and f[3] == "gap-msg"]
        assert len(frames) == 1  # sent exactly once, not also reissued
        assert repl.counters.get("reissues") == 0
        # and it is delivered exactly once end-to-end:
        new.deliver(0, frames[0])
        sys_.run()
        assert app.delivered == ["gap-msg"]

    def test_status_query(self):
        sys_, st, fake, repl, app = build()
        status = st.query(WellKnown.R_ABCAST, "status")
        assert status["seq_number"] == 0
        assert status["current_protocol"] == "fake-abcast"


class TestGuardedVariant:
    def test_stale_change_discarded(self):
        sys_, st, fake, repl, app = build(guard=True)
        repl.seq_number = 2
        fake.deliver(1, (NEW_ABCAST, 0, (1, 0), "fake-abcast"))
        sys_.run()
        assert repl.seq_number == 2  # no switch
        assert repl.counters.get("stale_changes_discarded") == 1

    def test_own_stale_change_dropped_under_drop_policy(self):
        sys_, st, fake, repl, app = build(guard=True, policy="drop")
        app.call(WellKnown.R_ABCAST, "change_protocol", "fake-abcast")
        sys_.run()
        my_change = fake.sent[0]
        # another switch happens first (e.g. someone else's change)
        fake.deliver(1, (NEW_ABCAST, 0, (1, 99), "fake-abcast"))
        sys_.run()
        new = st.bound_module(WellKnown.ABCAST)
        # now my own change arrives, stale
        new.deliver(0, my_change)
        sys_.run()
        assert repl.counters.get("changes_dropped_superseded") == 1
        assert len(repl._pending_changes) == 0

    def test_own_stale_change_reissued_under_reissue_policy(self):
        sys_, st, fake, repl, app = build(guard=True, policy="reissue")
        app.call(WellKnown.R_ABCAST, "change_protocol", "fake-abcast")
        sys_.run()
        my_change = fake.sent[0]
        fake.deliver(1, (NEW_ABCAST, 0, (1, 99), "fake-abcast"))
        sys_.run()
        new = st.bound_module(WellKnown.ABCAST)
        new.deliver(0, my_change)
        sys_.run()
        assert repl.counters.get("changes_reissued") == 1
        reissued = [f for f in new.sent if f[0] == NEW_ABCAST]
        assert reissued and reissued[0][1] == 1  # carries the current sn

    def test_invalid_policy_rejected(self):
        sys_ = System(n=1, seed=0)
        st = sys_.stack(0)
        with pytest.raises(ReplacementError):
            ReplAbcastModule(
                st, sys_.registry, initial_protocol="x", reissue_policy="maybe"
            )


class TestPaperLiteralAnomaly:
    """DESIGN.md §4: without the sn guard, a stale change message is
    processed at an unsynchronised point; messages delivered by the new
    protocol at one stack before the stale change can be discarded at
    another stack after it — and never re-issued.

    Driving two Repl instances (two 'stacks') by hand over fake abcasts,
    we reproduce the divergence deterministically.
    """

    def _build_pair(self, guard):
        systems = []
        for _ in range(2):
            systems.append(build(guard=guard))
        return systems

    def test_literal_variant_can_lose_a_message(self):
        (sysA, stA, fakeA, replA, appA), (sysB, stB, fakeB, replB, appB) = (
            self._build_pair(guard=False)
        )
        # Stack A sends m via protocol v0; both stacks request changes
        # concurrently: c1 (applied first) and c2 (stale, applied late).
        appA.call(WellKnown.R_ABCAST, "abcast", "m", 64)
        sysA.run()
        c1 = (NEW_ABCAST, 0, (1, 0), "fake-abcast")
        c2 = (NEW_ABCAST, 0, (0, 99), "fake-abcast")

        # Both stacks process c1: switch to v1; A re-issues m with sn=1.
        for sys_, fake in ((sysA, fakeA), (sysB, fakeB)):
            fake.deliver(1, c1)
            sys_.run()
        newA = stA.bound_module(WellKnown.ABCAST)
        newB = stB.bound_module(WellKnown.ABCAST)
        m_reissue = [f for f in newA.sent if f[0] == NIL][0]
        assert m_reissue[1] == 1

        # Interleaving divergence: A delivers the re-issued m (sn=1 ==
        # seqNumber=1) BEFORE processing the stale c2...
        newA.deliver(0, m_reissue)
        sysA.run()
        assert appA.delivered == ["m"]
        newA.deliver(0, c2)       # literal: unguarded -> switches again
        sysA.run()
        assert replA.seq_number == 2

        # ...while B processes the stale c2 FIRST (seq -> 2), then the
        # re-issued m arrives with sn=1 and is discarded.
        newB.deliver(0, c2)
        sysB.run()
        assert replB.seq_number == 2
        newB.deliver(0, m_reissue)
        sysB.run()
        # m was removed from A's undelivered when A delivered it, so A's
        # second switch re-issues nothing: B never gets m.
        finalA = stA.bound_module(WellKnown.ABCAST)
        assert [f for f in finalA.sent if f[0] == NIL] == []
        assert appB.delivered == []  # uniform agreement violated

    def test_guarded_variant_discards_stale_change_consistently(self):
        (sysA, stA, fakeA, replA, appA), (sysB, stB, fakeB, replB, appB) = (
            self._build_pair(guard=True)
        )
        appA.call(WellKnown.R_ABCAST, "abcast", "m", 64)
        sysA.run()
        c1 = (NEW_ABCAST, 0, (1, 0), "fake-abcast")
        c2 = (NEW_ABCAST, 0, (0, 99), "fake-abcast")
        for sys_, fake in ((sysA, fakeA), (sysB, fakeB)):
            fake.deliver(1, c1)
            sys_.run()
        newA = stA.bound_module(WellKnown.ABCAST)
        newB = stB.bound_module(WellKnown.ABCAST)
        m_reissue = [f for f in newA.sent if f[0] == NIL][0]

        # Same adversarial interleaving as above:
        newA.deliver(0, m_reissue)
        newA.deliver(0, c2)
        sysA.run()
        newB.deliver(0, c2)       # guarded: stale change discarded
        newB.deliver(0, m_reissue)
        sysB.run()
        assert replA.seq_number == replB.seq_number == 1
        assert appA.delivered == ["m"]
        assert appB.delivered == ["m"]  # agreement preserved


class TestDedupOption:
    def test_dedup_suppresses_double_delivery(self):
        sys_, st, fake, repl, app = build(dedup=True)
        frame = (NIL, 0, (1, 0), "m", 64)
        fake.deliver(1, frame)
        fake.deliver(1, frame)
        sys_.run()
        assert app.delivered == ["m"]
        assert repl.counters.get("dedup_suppressed") == 1


class TestSwitchChain:
    """The per-version SwitchTask state machine and version chain."""

    def test_single_switch_task_lifecycle(self):
        sys_, st, fake, repl, app = build(creation_cost=0.050)
        assert repl.switch_chain == []
        fake.deliver(1, (NEW_ABCAST, 0, (1, 0), "fake-abcast"))
        sys_.run(until=0.010)
        (task,) = repl.switch_chain
        assert (task.version, task.protocol, task.state) == (1, "fake-abcast", "creating")
        assert task.ordered_at == task.creating_at  # started immediately
        sys_.run()
        assert task.state == "reissued"
        assert task.bound_at == task.reissued_at
        assert task.bound_at == pytest.approx(task.creating_at + 0.050)
        assert repl.protocol_trajectory() == [(0, "fake-abcast"), (1, "fake-abcast")]

    def test_status_exposes_chain(self):
        sys_, st, fake, repl, app = build()
        fake.deliver(1, (NEW_ABCAST, 0, (1, 0), "fake-abcast"))
        sys_.run()
        status = st.query(WellKnown.R_ABCAST, "status")
        assert status["pending_chain"] == 0
        assert [t["state"] for t in status["chain"]] == ["reissued"]
        assert status["chain"][0]["version"] == 1

    def test_paper_literal_pipelined_chain_queues_and_completes_in_order(self):
        """Guard off + a stale change mid-gap: the second task waits in
        state ``ordered`` behind the creating one, then the chain runs
        both — per-task version tags, not the live seq_number."""
        sys_, st, fake, repl, app = build(guard=False, creation_cost=0.050)
        fake.deliver(1, (NEW_ABCAST, 0, (1, 0), "fake-abcast"))
        sys_.run(until=0.010)
        # Second change (stale sn=0) delivered by the still-running old
        # module inside the creation gap.
        fake.deliver(1, (NEW_ABCAST, 0, (2, 0), "fake-abcast"))
        sys_.run(until=0.011)
        assert repl.seq_number == 2            # line 11 ran at ordering time
        states = [t.state for t in repl.switch_chain]
        assert states == ["creating", "ordered"]  # pipelined, serialised
        sys_.run()
        assert [t.state for t in repl.switch_chain] == ["reissued", "reissued"]
        v2 = repl.switch_chain[1]
        assert v2.creating_at > 0.049  # queued behind v1's creation
        assert v2.ordered_at < v2.creating_at
        # The bound module carries the *task's* version tag, v2 not v1.
        bound = st.bound_module(WellKnown.ABCAST)
        assert bound.name in st.modules
        assert repl.protocol_trajectory() == [
            (0, "fake-abcast"), (1, "fake-abcast"), (2, "fake-abcast")
        ]

    def test_crash_mid_chain_restart_resumes_whole_chain(self):
        """A crash while v1 is creating (with v2 already ordered) must
        resume the *chain*: v1's creation re-arms, v2 follows."""
        sys_, st, fake, repl, app = build(guard=False, creation_cost=0.050)
        fake.deliver(1, (NEW_ABCAST, 0, (1, 0), "fake-abcast"))
        sys_.run(until=0.010)
        fake.deliver(1, (NEW_ABCAST, 0, (2, 0), "fake-abcast"))
        sys_.run(until=0.020)
        assert [t.state for t in repl.switch_chain] == ["creating", "ordered"]
        st.machine.crash()
        sys_.run(until=0.200)
        # Dead incarnation: nothing moved, abcast still unbound.
        assert [t.state for t in repl.switch_chain] == ["creating", "ordered"]
        assert st.bound_module(WellKnown.ABCAST) is None
        st.machine.recover()
        sys_.run(until=0.200 + 0.049)
        assert [t.state for t in repl.switch_chain] == ["creating", "ordered"]
        sys_.run()
        assert [t.state for t in repl.switch_chain] == ["reissued", "reissued"]
        assert st.bound_module(WellKnown.ABCAST) is not None
        assert repl.seq_number == 2

    def test_multi_version_stale_classification(self):
        sys_, st, fake, repl, app = build()
        repl.seq_number = 3
        fake.deliver(1, (NIL, 2, (1, 0), "one-behind", 64))
        fake.deliver(1, (NIL, 1, (1, 1), "two-behind", 64))
        fake.deliver(1, (NIL, 5, (1, 2), "from-the-future", 64))
        sys_.run()
        assert repl.counters.get("stale_messages_discarded") == 3
        assert repl.counters.get("stale_multi_version") == 2
        assert repl.stale_gaps == {1: 1, 2: 1, -2: 1}

    def test_task_transitions_are_forward_only(self):
        from repro.dpu import SwitchTask
        task = SwitchTask(1, "p", (0, 0), 0.0)
        task.advance("creating", 1.0)
        task.advance("bound", 2.0)
        with pytest.raises(ReplacementError):
            task.advance("creating", 3.0)
        assert task.to_dict()["state"] == "bound"


class TestPipelinedAnomaly:
    """The paper-literal anomaly *under pipelining* (ISSUE 5 satellite):
    two overlapping changes, the second landing inside stack B's
    creation gap — B's chain genuinely pipelines (ordered behind
    creating) and uniform agreement still breaks without the guard,
    while the guarded variant stays consistent."""

    def _run(self, guard):
        (sysA, stA, fakeA, replA, appA) = build(guard=guard, creation_cost=0.050)
        (sysB, stB, fakeB, replB, appB) = build(guard=guard, creation_cost=0.050)
        # A's message m rides v0; c1 and c2 are concurrent changes (both
        # stamped sn=0; c2 ordered after c1 in v0's total order).
        appA.call(WellKnown.R_ABCAST, "abcast", "m", 64)
        sysA.run()
        c1 = (NEW_ABCAST, 0, (1, 0), "fake-abcast")
        c2 = (NEW_ABCAST, 0, (0, 99), "fake-abcast")

        # Both stacks process c1 and complete the v1 switch; A re-issues
        # m under sn=1.
        for sys_, fake in ((sysA, fakeA), (sysB, fakeB)):
            fake.deliver(1, c1)
            sys_.run()
        newA = stA.bound_module(WellKnown.ABCAST)
        newB = stB.bound_module(WellKnown.ABCAST)
        m_reissue = [f for f in newA.sent if f[0] == NIL][0]
        assert m_reissue[1] == 1

        # A delivers the re-issued m, THEN processes the stale c2.
        newA.deliver(0, m_reissue)
        sysA.run()
        newA.deliver(0, c2)
        sysA.run()

        # B processes the stale c2 FIRST — and (pipelining) the re-issued
        # m arrives while B is still creating the v2 module.
        newB.deliver(0, c2)
        sysB.run(until=sysB.sim.now + 0.010)
        if not guard:
            # The genuine pipelined shape: with a second change accepted
            # mid-window, B's v1 instance keeps delivering (unbound) but
            # the chain serialises v2 behind it.
            assert replB.seq_number == 2
        newB.deliver(0, m_reissue)
        sysB.run()
        sysA.run()
        return appA, appB, replA, replB

    def test_literal_variant_loses_m_under_pipelining(self):
        appA, appB, replA, replB = self._run(guard=False)
        assert replA.seq_number == replB.seq_number == 2
        assert appA.delivered == ["m"]
        assert appB.delivered == []  # uniform agreement violated
        # B classified the lost copy as a stale discard.
        assert replB.counters.get("stale_messages_discarded") >= 1

    def test_guard_prevents_the_pipelined_anomaly(self):
        appA, appB, replA, replB = self._run(guard=True)
        assert replA.seq_number == replB.seq_number == 1
        assert appA.delivered == ["m"]
        assert appB.delivered == ["m"]  # agreement preserved
