"""Unit tests: Algorithm 1, line by line, against a scripted ABcast.

The fake ABcast module gives the tests total control over delivery
content and order, so every branch of the replacement algorithm is
exercised deterministically — including the concurrent-change anomaly of
the paper-literal variant documented in DESIGN.md §4.
"""

import pytest

from repro.dpu.repl import NEW_ABCAST, NIL, ReplAbcastModule
from repro.errors import ReplacementError
from repro.kernel import Module, System, WellKnown


class FakeAbcast(Module):
    """An ABcast provider the test drives by hand.

    ``abcast`` calls are captured in :attr:`sent`; the test delivers
    frames explicitly with :meth:`deliver` (to every instance of the
    protocol that is currently in a stack, in stack order — mimicking a
    totally ordered delivery)."""

    PROVIDES = (WellKnown.ABCAST,)
    PROTOCOL = "fake-abcast"

    instances: list = []  # class-level: all live instances, all stacks

    def __init__(self, stack, **kwargs):
        super().__init__(stack)
        self.sent = []
        self.export_call(WellKnown.ABCAST, "abcast", self.sent_append)
        FakeAbcast.instances.append(self)

    def sent_append(self, frame, size):
        self.sent.append(frame)

    def deliver(self, origin, frame, size=64):
        self.respond(WellKnown.ABCAST, "adeliver", origin, frame, size)


class AppSink(Module):
    REQUIRES = (WellKnown.R_ABCAST,)
    PROTOCOL = "sink"

    def __init__(self, stack):
        super().__init__(stack)
        self.delivered = []
        self.subscribe(
            WellKnown.R_ABCAST,
            "adeliver",
            lambda o, m, s: self.delivered.append(m),
        )


@pytest.fixture(autouse=True)
def _clear_fake_instances():
    FakeAbcast.instances = []
    yield
    FakeAbcast.instances = []


def build(guard=True, policy="drop", creation_cost=0.0, dedup=False):
    sys_ = System(n=1, seed=0)
    st = sys_.stack(0)
    sys_.registry.register(
        "fake-abcast",
        lambda stack, **kw: FakeAbcast(stack, **kw),
        provides=(WellKnown.ABCAST,),
        default_for=(WellKnown.ABCAST,),
    )
    fake = sys_.registry.create_module(st, "fake-abcast")
    repl = ReplAbcastModule(
        st,
        sys_.registry,
        initial_protocol="fake-abcast",
        guard_change_sn=guard,
        reissue_policy=policy,
        creation_cost=creation_cost,
        dedup_deliveries=dedup,
    )
    st.add_module(repl)
    app = AppSink(st)
    st.add_module(app)
    return sys_, st, fake, repl, app


class TestOrdinaryPath:
    def test_rabcast_adds_to_undelivered_and_forwards(self):
        """Lines 7-9."""
        sys_, st, fake, repl, app = build()
        app.call(WellKnown.R_ABCAST, "abcast", "m1", 64)
        sys_.run()
        assert repl.undelivered_count == 1
        assert len(fake.sent) == 1
        tag, sn, rid, m, size = fake.sent[0]
        assert (tag, sn, m) == (NIL, 0, "m1")

    def test_matching_sn_delivers_and_clears_undelivered(self):
        """Lines 17-21, local message."""
        sys_, st, fake, repl, app = build()
        app.call(WellKnown.R_ABCAST, "abcast", "m1", 64)
        sys_.run()
        fake.deliver(0, fake.sent[0])
        sys_.run()
        assert app.delivered == ["m1"]
        assert repl.undelivered_count == 0

    def test_remote_message_delivered_without_undelivered_entry(self):
        """Line 19's membership test only gates the removal, not rAdeliver."""
        sys_, st, fake, repl, app = build()
        fake.deliver(1, (NIL, 0, (1, 0), "remote", 64))
        sys_.run()
        assert app.delivered == ["remote"]

    def test_stale_sn_discarded(self):
        """Line 18."""
        sys_, st, fake, repl, app = build()
        repl.seq_number = 3
        fake.deliver(1, (NIL, 2, (1, 0), "old", 64))
        sys_.run()
        assert app.delivered == []
        assert repl.counters.get("stale_messages_discarded") == 1


class TestChangePath:
    def test_change_abcasts_request_through_current_protocol(self):
        """Lines 5-6."""
        sys_, st, fake, repl, app = build()
        app.call(WellKnown.R_ABCAST, "change_protocol", "fake-abcast")
        sys_.run()
        tag, sn, rid, prot = fake.sent[0]
        assert (tag, sn, prot) == (NEW_ABCAST, 0, "fake-abcast")

    def test_unknown_protocol_fails_fast(self):
        sys_, st, fake, repl, app = build()
        app.call(WellKnown.R_ABCAST, "change_protocol", "ghost")
        with pytest.raises(Exception):
            sys_.run()

    def test_switch_increments_rebinds_and_reissues(self):
        """Lines 10-16."""
        sys_, st, fake, repl, app = build()
        app.call(WellKnown.R_ABCAST, "abcast", "m1", 64)
        app.call(WellKnown.R_ABCAST, "abcast", "m2", 64)
        sys_.run()
        old = st.bound_module(WellKnown.ABCAST)
        fake.deliver(1, (NEW_ABCAST, 0, (1, 0), "fake-abcast"))
        sys_.run()
        assert repl.seq_number == 1                            # line 11
        new = st.bound_module(WellKnown.ABCAST)
        assert new is not old                                  # lines 12-14
        assert old.name in st.modules                          # unbind ≠ remove
        # lines 15-16: both undelivered messages re-issued with new sn
        reissues = [f for f in new.sent if f[0] == NIL]
        assert [(f[1], f[3]) for f in reissues] == [(1, "m1"), (1, "m2")]
        assert repl.counters.get("reissues") == 2

    def test_reissued_message_delivered_once(self):
        """Integrity across the switch: old-sn copy discarded, new-sn
        copy delivered."""
        sys_, st, fake, repl, app = build()
        app.call(WellKnown.R_ABCAST, "abcast", "m1", 64)
        sys_.run()
        original = fake.sent[0]
        fake.deliver(1, (NEW_ABCAST, 0, (1, 0), "fake-abcast"))
        sys_.run()
        new = st.bound_module(WellKnown.ABCAST)
        # old protocol delivers the original late -> discarded
        fake.deliver(0, original)
        sys_.run()
        assert app.delivered == []
        # new protocol delivers the reissue -> delivered exactly once
        new.deliver(0, new.sent[0])
        sys_.run()
        assert app.delivered == ["m1"]

    def test_delivered_message_not_reissued(self):
        """Line 19-20 removal prevents re-issue of delivered messages."""
        sys_, st, fake, repl, app = build()
        app.call(WellKnown.R_ABCAST, "abcast", "m1", 64)
        sys_.run()
        fake.deliver(0, fake.sent[0])
        sys_.run()
        fake.deliver(1, (NEW_ABCAST, 0, (1, 0), "fake-abcast"))
        sys_.run()
        new = st.bound_module(WellKnown.ABCAST)
        assert [f for f in new.sent if f[0] == NIL] == []

    def test_switch_with_creation_cost_blocks_calls_until_bind(self):
        sys_, st, fake, repl, app = build(creation_cost=0.050)
        fake.deliver(1, (NEW_ABCAST, 0, (1, 0), "fake-abcast"))
        sys_.run(until=0.001)
        assert st.bound_module(WellKnown.ABCAST) is None  # gap is real
        app.call(WellKnown.R_ABCAST, "abcast", "during-gap", 64)
        sys_.run(until=0.010)
        assert st.blocked_call_count(WellKnown.ABCAST) == 1
        sys_.run()  # creation completes, blocked call released
        new = st.bound_module(WellKnown.ABCAST)
        assert new is not None
        assert any(f[0] == NIL and f[3] == "during-gap" for f in new.sent)

    def test_message_sent_inside_creation_gap_not_reissued(self):
        """Regression (found by hypothesis): a message ABcast during the
        unbind→bind gap already carries the new sn and its blocked call
        is released at bind; reissuing it too would deliver it twice."""
        sys_, st, fake, repl, app = build(creation_cost=0.050)
        fake.deliver(1, (NEW_ABCAST, 0, (1, 0), "fake-abcast"))
        sys_.run(until=0.001)
        app.call(WellKnown.R_ABCAST, "abcast", "gap-msg", 64)
        sys_.run()  # switch completes, blocked call released
        new = st.bound_module(WellKnown.ABCAST)
        frames = [f for f in new.sent if f[0] == NIL and f[3] == "gap-msg"]
        assert len(frames) == 1  # sent exactly once, not also reissued
        assert repl.counters.get("reissues") == 0
        # and it is delivered exactly once end-to-end:
        new.deliver(0, frames[0])
        sys_.run()
        assert app.delivered == ["gap-msg"]

    def test_status_query(self):
        sys_, st, fake, repl, app = build()
        status = st.query(WellKnown.R_ABCAST, "status")
        assert status["seq_number"] == 0
        assert status["current_protocol"] == "fake-abcast"


class TestGuardedVariant:
    def test_stale_change_discarded(self):
        sys_, st, fake, repl, app = build(guard=True)
        repl.seq_number = 2
        fake.deliver(1, (NEW_ABCAST, 0, (1, 0), "fake-abcast"))
        sys_.run()
        assert repl.seq_number == 2  # no switch
        assert repl.counters.get("stale_changes_discarded") == 1

    def test_own_stale_change_dropped_under_drop_policy(self):
        sys_, st, fake, repl, app = build(guard=True, policy="drop")
        app.call(WellKnown.R_ABCAST, "change_protocol", "fake-abcast")
        sys_.run()
        my_change = fake.sent[0]
        # another switch happens first (e.g. someone else's change)
        fake.deliver(1, (NEW_ABCAST, 0, (1, 99), "fake-abcast"))
        sys_.run()
        new = st.bound_module(WellKnown.ABCAST)
        # now my own change arrives, stale
        new.deliver(0, my_change)
        sys_.run()
        assert repl.counters.get("changes_dropped_superseded") == 1
        assert len(repl._pending_changes) == 0

    def test_own_stale_change_reissued_under_reissue_policy(self):
        sys_, st, fake, repl, app = build(guard=True, policy="reissue")
        app.call(WellKnown.R_ABCAST, "change_protocol", "fake-abcast")
        sys_.run()
        my_change = fake.sent[0]
        fake.deliver(1, (NEW_ABCAST, 0, (1, 99), "fake-abcast"))
        sys_.run()
        new = st.bound_module(WellKnown.ABCAST)
        new.deliver(0, my_change)
        sys_.run()
        assert repl.counters.get("changes_reissued") == 1
        reissued = [f for f in new.sent if f[0] == NEW_ABCAST]
        assert reissued and reissued[0][1] == 1  # carries the current sn

    def test_invalid_policy_rejected(self):
        sys_ = System(n=1, seed=0)
        st = sys_.stack(0)
        with pytest.raises(ReplacementError):
            ReplAbcastModule(
                st, sys_.registry, initial_protocol="x", reissue_policy="maybe"
            )


class TestPaperLiteralAnomaly:
    """DESIGN.md §4: without the sn guard, a stale change message is
    processed at an unsynchronised point; messages delivered by the new
    protocol at one stack before the stale change can be discarded at
    another stack after it — and never re-issued.

    Driving two Repl instances (two 'stacks') by hand over fake abcasts,
    we reproduce the divergence deterministically.
    """

    def _build_pair(self, guard):
        systems = []
        for _ in range(2):
            systems.append(build(guard=guard))
        return systems

    def test_literal_variant_can_lose_a_message(self):
        (sysA, stA, fakeA, replA, appA), (sysB, stB, fakeB, replB, appB) = (
            self._build_pair(guard=False)
        )
        # Stack A sends m via protocol v0; both stacks request changes
        # concurrently: c1 (applied first) and c2 (stale, applied late).
        appA.call(WellKnown.R_ABCAST, "abcast", "m", 64)
        sysA.run()
        c1 = (NEW_ABCAST, 0, (1, 0), "fake-abcast")
        c2 = (NEW_ABCAST, 0, (0, 99), "fake-abcast")

        # Both stacks process c1: switch to v1; A re-issues m with sn=1.
        for sys_, fake in ((sysA, fakeA), (sysB, fakeB)):
            fake.deliver(1, c1)
            sys_.run()
        newA = stA.bound_module(WellKnown.ABCAST)
        newB = stB.bound_module(WellKnown.ABCAST)
        m_reissue = [f for f in newA.sent if f[0] == NIL][0]
        assert m_reissue[1] == 1

        # Interleaving divergence: A delivers the re-issued m (sn=1 ==
        # seqNumber=1) BEFORE processing the stale c2...
        newA.deliver(0, m_reissue)
        sysA.run()
        assert appA.delivered == ["m"]
        newA.deliver(0, c2)       # literal: unguarded -> switches again
        sysA.run()
        assert replA.seq_number == 2

        # ...while B processes the stale c2 FIRST (seq -> 2), then the
        # re-issued m arrives with sn=1 and is discarded.
        newB.deliver(0, c2)
        sysB.run()
        assert replB.seq_number == 2
        newB.deliver(0, m_reissue)
        sysB.run()
        # m was removed from A's undelivered when A delivered it, so A's
        # second switch re-issues nothing: B never gets m.
        finalA = stA.bound_module(WellKnown.ABCAST)
        assert [f for f in finalA.sent if f[0] == NIL] == []
        assert appB.delivered == []  # uniform agreement violated

    def test_guarded_variant_discards_stale_change_consistently(self):
        (sysA, stA, fakeA, replA, appA), (sysB, stB, fakeB, replB, appB) = (
            self._build_pair(guard=True)
        )
        appA.call(WellKnown.R_ABCAST, "abcast", "m", 64)
        sysA.run()
        c1 = (NEW_ABCAST, 0, (1, 0), "fake-abcast")
        c2 = (NEW_ABCAST, 0, (0, 99), "fake-abcast")
        for sys_, fake in ((sysA, fakeA), (sysB, fakeB)):
            fake.deliver(1, c1)
            sys_.run()
        newA = stA.bound_module(WellKnown.ABCAST)
        newB = stB.bound_module(WellKnown.ABCAST)
        m_reissue = [f for f in newA.sent if f[0] == NIL][0]

        # Same adversarial interleaving as above:
        newA.deliver(0, m_reissue)
        newA.deliver(0, c2)
        sysA.run()
        newB.deliver(0, c2)       # guarded: stale change discarded
        newB.deliver(0, m_reissue)
        sysB.run()
        assert replA.seq_number == replB.seq_number == 1
        assert appA.delivered == ["m"]
        assert appB.delivered == ["m"]  # agreement preserved


class TestDedupOption:
    def test_dedup_suppresses_double_delivery(self):
        sys_, st, fake, repl, app = build(dedup=True)
        frame = (NIL, 0, (1, 0), "m", 64)
        fake.deliver(1, frame)
        fake.deliver(1, frame)
        sys_.run()
        assert app.delivered == ["m"]
        assert repl.counters.get("dedup_suppressed") == 1
