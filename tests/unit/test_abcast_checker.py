"""Unit tests: ABcast property checkers on synthetic delivery logs."""

import pytest

from repro.dpu.abcast_checker import (
    assert_abcast_properties,
    check_uniform_agreement,
    check_uniform_integrity,
    check_uniform_total_order,
    check_validity,
)
from repro.dpu.probes import DeliveryLog
from repro.errors import PropertyViolation


def log_with(sends, deliveries):
    """sends: {key: (sender, t)}; deliveries: {stack: [keys in order]}."""
    log = DeliveryLog()
    for key, (sender, t) in sends.items():
        log.note_send(key, sender, t)
    for stack, keys in deliveries.items():
        for i, key in enumerate(keys):
            log.note_delivery(key, stack, 10.0 + i)
    return log


GOOD = dict(
    sends={"a": (0, 1.0), "b": (1, 2.0)},
    deliveries={0: ["a", "b"], 1: ["a", "b"], 2: ["a", "b"]},
)


class TestValidity:
    def test_holds(self):
        log = log_with(**GOOD)
        assert check_validity(log, crashed={}) == []

    def test_sender_missing_own_message(self):
        log = log_with(
            sends={"a": (0, 1.0)}, deliveries={1: ["a"], 2: ["a"], 0: []}
        )
        violations = check_validity(log, crashed={})
        assert len(violations) == 1 and "'a'" in violations[0]

    def test_crashed_sender_exempt(self):
        log = log_with(sends={"a": (0, 1.0)}, deliveries={1: [], 2: []})
        assert check_validity(log, crashed={0: 1.5}) == []

    def test_in_flight_exemption(self):
        log = log_with(sends={"a": (0, 1.0)}, deliveries={})
        assert check_validity(log, crashed={}, in_flight_ok={"a"}) == []


class TestUniformAgreement:
    def test_holds(self):
        log = log_with(**GOOD)
        assert check_uniform_agreement(log, {}, [0, 1, 2]) == []

    def test_missing_at_one_correct_stack(self):
        log = log_with(
            sends={"a": (0, 1.0)}, deliveries={0: ["a"], 1: ["a"], 2: []}
        )
        violations = check_uniform_agreement(log, {}, [0, 1, 2])
        assert len(violations) == 1 and "stack 2" in violations[0]

    def test_uniformity_binds_even_deliveries_by_crashed(self):
        """The *uniform* flavour: a message delivered only by a stack
        that later crashed must still reach every correct stack."""
        log = log_with(
            sends={"a": (0, 1.0)}, deliveries={0: ["a"], 1: [], 2: []}
        )
        violations = check_uniform_agreement(log, {0: 99.0}, [0, 1, 2])
        assert len(violations) == 2  # stacks 1 and 2 both missing it

    def test_crashed_stack_not_obligated(self):
        log = log_with(
            sends={"a": (0, 1.0)}, deliveries={0: ["a"], 1: ["a"], 2: []}
        )
        assert check_uniform_agreement(log, {2: 5.0}, [0, 1, 2]) == []


class TestUniformIntegrity:
    def test_holds(self):
        assert check_uniform_integrity(log_with(**GOOD), [0, 1, 2]) == []

    def test_double_delivery_caught(self):
        log = log_with(
            sends={"a": (0, 1.0)}, deliveries={0: ["a", "a"], 1: ["a"]}
        )
        violations = check_uniform_integrity(log, [0, 1])
        assert len(violations) == 1 and "more than once" in violations[0]

    def test_creation_from_nothing_caught(self):
        log = log_with(sends={}, deliveries={0: ["phantom"]})
        violations = check_uniform_integrity(log, [0])
        assert len(violations) == 1 and "never ABcast" in violations[0]


class TestUniformTotalOrder:
    def test_holds(self):
        assert check_uniform_total_order(log_with(**GOOD), [0, 1, 2]) == []

    def test_swap_caught(self):
        log = log_with(
            sends={"a": (0, 1.0), "b": (1, 2.0)},
            deliveries={0: ["a", "b"], 1: ["b", "a"]},
        )
        violations = check_uniform_total_order(log, [0, 1])
        assert len(violations) == 1 and "diverge" in violations[0]

    def test_restriction_to_common_set(self):
        """A stack that missed a message (e.g. crashed early) does not
        create an order violation as long as the common prefix agrees."""
        log = log_with(
            sends={"a": (0, 1.0), "b": (1, 2.0), "c": (2, 3.0)},
            deliveries={0: ["a", "b", "c"], 1: ["a", "c"]},
        )
        assert check_uniform_total_order(log, [0, 1]) == []

    def test_disjoint_sets_trivially_ordered(self):
        log = log_with(
            sends={"a": (0, 1.0), "b": (1, 2.0)},
            deliveries={0: ["a"], 1: ["b"]},
        )
        assert check_uniform_total_order(log, [0, 1]) == []


class TestAssertAll:
    def test_good_log_passes(self):
        assert_abcast_properties(log_with(**GOOD), {}, [0, 1, 2])

    def test_first_failure_raises_with_property_name(self):
        log = log_with(
            sends={"a": (0, 1.0), "b": (1, 2.0)},
            deliveries={0: ["a", "b"], 1: ["b", "a"], 2: ["a", "b"]},
        )
        with pytest.raises(PropertyViolation, match="total order"):
            assert_abcast_properties(log, {}, [0, 1, 2])


class TestChainAgreement:
    def test_identical_chains_pass(self):
        from repro.dpu import chain_agreement_violations

        chains = {s: ["ct", "seq", "ct"] for s in range(3)}
        assert chain_agreement_violations(chains) == []

    def test_diverging_correct_stacks_flagged(self):
        from repro.dpu import chain_agreement_violations

        chains = {0: ["ct", "seq"], 1: ["ct", "token"], 2: ["ct", "seq"]}
        violations = chain_agreement_violations(chains)
        assert len(violations) == 1
        assert "different protocol chains" in violations[0]

    def test_reordered_chain_flagged(self):
        from repro.dpu import chain_agreement_violations

        chains = {0: ["ct", "seq", "token"], 1: ["ct", "token", "seq"]}
        assert chain_agreement_violations(chains)

    def test_crashed_stack_may_miss_versions_but_not_reorder(self):
        from repro.dpu import chain_agreement_violations

        chains = {0: ["ct", "seq", "token"], 1: ["ct", "seq", "token"],
                  2: ["ct", "token"]}
        assert chain_agreement_violations(chains, crashed={2: 1.0}) == []
        chains[2] = ["ct", "token", "seq"]  # out of order: not a subsequence
        violations = chain_agreement_violations(chains, crashed={2: 1.0})
        assert len(violations) == 1
        assert "subsequence" in violations[0]

    def test_trace_side_extractor(self):
        """protocol_chains reads BIND events of the replaced service only."""
        from repro.dpu import protocol_chains
        from repro.kernel import TraceKind
        from repro.kernel.trace import TraceRecorder

        trace = TraceRecorder()
        trace.record(0.0, TraceKind.BIND, 0, service="abcast", protocol="ct")
        trace.record(0.0, TraceKind.BIND, 0, service="rp2p", protocol="rp2p")
        trace.record(1.0, TraceKind.BIND, 0, service="abcast", protocol="seq")
        trace.record(1.1, TraceKind.BIND, 1, service="abcast", protocol="ct")
        chains = protocol_chains(trace, [0, 1], service="abcast")
        assert chains == {0: ["ct", "seq"], 1: ["ct"]}
