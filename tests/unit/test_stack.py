"""Unit tests: stack dispatch semantics — calls, blocking, responses, buffering.

These pin down the exact kernel behaviours the replacement algorithm
relies on (paper, Sections 2-3): blocked calls released on bind, unbound
modules still responding, unclaimed responses completed when the matching
module is added.
"""

import pytest

from repro.errors import KernelError, ModuleNotInStackError, UnknownServiceError
from repro.kernel import Module, NOT_MINE, System, TraceKind


class Echo(Module):
    PROVIDES = ("echo",)
    PROTOCOL = "echo"

    def __init__(self, stack, reply=True):
        super().__init__(stack)
        self.reply = reply
        self.calls = []
        self.export_call("echo", "ping", self._ping)
        self.export_query("echo", "count", lambda: len(self.calls))

    def _ping(self, value):
        self.calls.append(value)
        if self.reply:
            self.respond("echo", "pong", value)


class Listener(Module):
    REQUIRES = ("echo",)
    PROTOCOL = "listener"

    def __init__(self, stack, claim=True):
        super().__init__(stack)
        self.claim = claim
        self.heard = []
        self.subscribe("echo", "pong", self._on_pong)

    def _on_pong(self, value):
        if not self.claim:
            return NOT_MINE
        self.heard.append(value)


@pytest.fixture
def stack(system):
    return system.stack(0)


class TestCalls:
    def test_call_dispatches_to_bound_module(self, system, stack):
        echo = stack.add_module(Echo(stack))
        listener = stack.add_module(Listener(stack))
        listener.call("echo", "ping", 42)
        system.run()
        assert echo.calls == [42]
        assert listener.heard == [42]

    def test_call_costs_cpu_time(self, system, stack):
        stack.add_module(Echo(stack))
        listener = stack.add_module(Listener(stack))
        listener.call("echo", "ping", 1)
        system.run()
        assert system.sim.now == pytest.approx(
            stack.call_cost + stack.response_cost
        )

    def test_unknown_method_raises(self, system, stack):
        stack.add_module(Echo(stack))
        listener = stack.add_module(Listener(stack))
        listener.call("echo", "nosuch")
        with pytest.raises(KernelError, match="no handler"):
            system.run()

    def test_calls_on_crashed_stack_dropped(self, system, stack):
        echo = stack.add_module(Echo(stack))
        listener = stack.add_module(Listener(stack))
        stack.machine.crash()
        listener.call("echo", "ping", 1)
        system.run()
        assert echo.calls == []


class TestBlockedCalls:
    def test_call_on_unbound_service_blocks(self, system, stack):
        echo = stack.add_module(Echo(stack), bind=False)
        listener = stack.add_module(Listener(stack))
        listener.call("echo", "ping", 7)
        system.run()
        assert echo.calls == []
        assert stack.blocked_call_count("echo") == 1
        blocked = system.trace.of_kind(TraceKind.CALL_BLOCKED)
        assert len(blocked) == 1

    def test_bind_releases_blocked_calls_in_order(self, system, stack):
        echo = stack.add_module(Echo(stack), bind=False)
        listener = stack.add_module(Listener(stack))
        for i in range(3):
            listener.call("echo", "ping", i)
        system.run()
        stack.bind("echo", echo)
        system.run()
        assert echo.calls == [0, 1, 2]
        assert stack.blocked_call_count("echo") == 0
        unblocked = system.trace.of_kind(TraceKind.CALL_UNBLOCKED)
        assert len(unblocked) == 3

    def test_in_flight_call_does_not_overtake_released_backlog(self):
        """A call whose CPU completion lands just after a bind must not
        jump ahead of calls issued earlier that blocked on the unbound
        service (regression: served [1, 0] instead of [0, 1]).

        The race needs the second call's dispatch completion (issue
        instant + call_cost) to land fractionally *after* the bind, so it
        carries an older heap seq than the released backlog's dispatch.
        """
        sys_ = System(n=1, seed=0)
        st = sys_.stack(0)
        echo = st.add_module(Echo(st), bind=False)
        listener = st.add_module(Listener(st))
        sys_.sim.schedule_at(0.0, listener.call, "echo", "ping", 0)
        sys_.sim.schedule_at(0.99999, listener.call, "echo", "ping", 1)
        sys_.sim.schedule_at(1.0, st.bind, "echo", echo)
        sys_.run()
        assert echo.calls == [0, 1]
        assert st.blocked_call_count("echo") == 0

    def test_backlog_drains_after_crash_kills_pending_drain(self):
        """A crash that lands between a bind and its scheduled drain task
        must not wedge the backlog: the drain task died with the old
        incarnation, and the restart path re-starts it on recovery
        (regression: the drain-pending flag stayed set forever and the
        backlog was stuck even across later binds)."""
        sys_ = System(n=1, seed=0)
        st = sys_.stack(0)
        echo = st.add_module(Echo(st), bind=False)
        listener = st.add_module(Listener(st))
        listener.call("echo", "ping", 0)
        sys_.run()  # the call blocks on the unbound service
        st.bind("echo", echo)  # schedules the 0-cost drain task...
        st.machine.crash()  # ...which dies with the old incarnation
        assert echo.calls == []  # the drain really was killed
        st.machine.recover()  # restart protocol re-starts the drain
        sys_.run()
        assert echo.calls == [0]
        assert st.blocked_call_count("echo") == 0

    def test_blocked_time_is_accounted(self, system, stack):
        echo = stack.add_module(Echo(stack), bind=False)
        listener = stack.add_module(Listener(stack))
        listener.call("echo", "ping", 1)
        system.run()
        system.sim.schedule(0.5, stack.bind, "echo", echo)
        system.run()
        assert stack.blocked_time_total == pytest.approx(0.5, abs=1e-3)

    def test_unbind_then_call_blocks_again(self, system, stack):
        echo = stack.add_module(Echo(stack))
        listener = stack.add_module(Listener(stack))
        stack.unbind("echo")
        listener.call("echo", "ping", 5)
        system.run()
        assert echo.calls == []
        stack.bind("echo", echo)
        system.run()
        assert echo.calls == [5]


class TestResponses:
    def test_unbound_module_can_still_respond(self, system, stack):
        """Paper, Section 2: a module can respond even after unbind."""
        echo = stack.add_module(Echo(stack))
        listener = stack.add_module(Listener(stack))
        listener.call("echo", "ping", 1)
        system.run()
        stack.unbind("echo")
        echo.respond("echo", "pong", "late")
        system.run()
        assert "late" in listener.heard

    def test_response_to_all_subscribers(self, system, stack):
        stack.add_module(Echo(stack))
        l1 = stack.add_module(Listener(stack))
        l2 = stack.add_module(Listener(stack))
        l1.call("echo", "ping", 9)
        system.run()
        assert l1.heard == [9] and l2.heard == [9]

    def test_respond_on_unprovided_service_rejected(self, system, stack):
        listener = stack.add_module(Listener(stack))
        with pytest.raises(KernelError):
            listener.respond("echo", "pong", 1)


class TestResponseBuffering:
    def test_unclaimed_response_buffered_and_replayed(self, system, stack):
        """Paper, Section 2: responses complete when the module is added."""
        echo = stack.add_module(Echo(stack))
        echo.respond("echo", "pong", "early")
        system.run()
        assert stack.buffered_response_count("echo") == 1
        late_listener = stack.add_module(Listener(stack))
        system.run()
        assert late_listener.heard == ["early"]
        assert stack.buffered_response_count("echo") == 0

    def test_disclaimed_response_buffered(self, system, stack):
        echo = stack.add_module(Echo(stack))
        stack.add_module(Listener(stack, claim=False))
        echo.respond("echo", "pong", "nobody-wants-me")
        system.run()
        assert stack.buffered_response_count("echo") == 1
        claimer = stack.add_module(Listener(stack, claim=True))
        system.run()
        assert claimer.heard == ["nobody-wants-me"]

    def test_buffered_replay_preserves_order(self, system, stack):
        echo = stack.add_module(Echo(stack))
        for i in range(3):
            echo.respond("echo", "pong", i)
        system.run()
        listener = stack.add_module(Listener(stack))
        system.run()
        assert listener.heard == [0, 1, 2]


class TestQueries:
    def test_query_returns_synchronously(self, system, stack):
        stack.add_module(Echo(stack))
        listener = stack.add_module(Listener(stack))
        listener.call("echo", "ping", 1)
        system.run()
        assert stack.query("echo", "count") == 1

    def test_query_unbound_raises(self, stack):
        with pytest.raises(UnknownServiceError):
            stack.query("echo", "count")

    def test_query_unknown_name_raises(self, system, stack):
        stack.add_module(Echo(stack))
        with pytest.raises(KernelError):
            stack.query("echo", "nosuch")


class TestModuleLifecycle:
    def test_duplicate_names_rejected(self, stack):
        stack.add_module(Echo(stack, reply=True))
        m2 = Echo(stack)
        m2.name = list(stack.modules)[0]
        with pytest.raises(KernelError):
            stack.add_module(m2, bind=False)

    def test_wrong_stack_rejected(self, system):
        s0, s1 = system.stack(0), system.stack(1)
        m = Echo(s0)
        with pytest.raises(KernelError):
            s1.add_module(m)

    def test_remove_unbinds_and_stops(self, system, stack):
        echo = stack.add_module(Echo(stack))
        stack.remove_module(echo.name)
        assert not stack.bindings.is_bound("echo")
        assert echo.stopped
        assert echo.name not in stack.modules

    def test_remove_missing_raises(self, stack):
        with pytest.raises(ModuleNotInStackError):
            stack.remove_module("ghost")

    def test_fresh_module_names_unique(self, stack):
        names = {Echo(stack).name for _ in range(5)}
        assert len(names) == 5

    def test_multiple_providers_one_bound(self, system, stack):
        e1 = stack.add_module(Echo(stack))
        e2 = stack.add_module(Echo(stack), bind=False)
        assert stack.bound_module("echo") is e1
        assert set(stack.modules_providing("echo")) == {e1, e2}


class TestHandlerRegistrationGuards:
    def test_export_call_requires_provides(self, stack):
        listener = Listener(stack)
        with pytest.raises(KernelError):
            listener.export_call("echo", "x", lambda: None)

    def test_subscribe_requires_requires(self, stack):
        echo = Echo(stack)
        with pytest.raises(KernelError):
            echo.subscribe("other", "ev", lambda: None)
