"""Unit tests: stack dispatch semantics — calls, blocking, responses, buffering.

These pin down the exact kernel behaviours the replacement algorithm
relies on (paper, Sections 2-3): blocked calls released on bind, unbound
modules still responding, unclaimed responses completed when the matching
module is added.
"""

import pytest

from repro.errors import KernelError, ModuleNotInStackError, UnknownServiceError
from repro.kernel import Module, NOT_MINE, NULL_TRACE, Stack, System, TraceKind, TraceRecorder
from repro.sim import Machine, Simulator


class Echo(Module):
    PROVIDES = ("echo",)
    PROTOCOL = "echo"

    def __init__(self, stack, reply=True):
        super().__init__(stack)
        self.reply = reply
        self.calls = []
        self.export_call("echo", "ping", self._ping)
        self.export_query("echo", "count", lambda: len(self.calls))

    def _ping(self, value):
        self.calls.append(value)
        if self.reply:
            self.respond("echo", "pong", value)


class Listener(Module):
    REQUIRES = ("echo",)
    PROTOCOL = "listener"

    def __init__(self, stack, claim=True):
        super().__init__(stack)
        self.claim = claim
        self.heard = []
        self.subscribe("echo", "pong", self._on_pong)

    def _on_pong(self, value):
        if not self.claim:
            return NOT_MINE
        self.heard.append(value)


@pytest.fixture
def stack(system):
    return system.stack(0)


class TestCalls:
    def test_call_dispatches_to_bound_module(self, system, stack):
        echo = stack.add_module(Echo(stack))
        listener = stack.add_module(Listener(stack))
        listener.call("echo", "ping", 42)
        system.run()
        assert echo.calls == [42]
        assert listener.heard == [42]

    def test_call_costs_cpu_time(self, system, stack):
        stack.add_module(Echo(stack))
        listener = stack.add_module(Listener(stack))
        listener.call("echo", "ping", 1)
        system.run()
        assert system.sim.now == pytest.approx(
            stack.call_cost + stack.response_cost
        )

    def test_unknown_method_raises(self, system, stack):
        stack.add_module(Echo(stack))
        listener = stack.add_module(Listener(stack))
        listener.call("echo", "nosuch")
        with pytest.raises(KernelError, match="no handler"):
            system.run()

    def test_calls_on_crashed_stack_dropped(self, system, stack):
        echo = stack.add_module(Echo(stack))
        listener = stack.add_module(Listener(stack))
        stack.machine.crash()
        listener.call("echo", "ping", 1)
        system.run()
        assert echo.calls == []


class TestBlockedCalls:
    def test_call_on_unbound_service_blocks(self, system, stack):
        echo = stack.add_module(Echo(stack), bind=False)
        listener = stack.add_module(Listener(stack))
        listener.call("echo", "ping", 7)
        system.run()
        assert echo.calls == []
        assert stack.blocked_call_count("echo") == 1
        blocked = system.trace.of_kind(TraceKind.CALL_BLOCKED)
        assert len(blocked) == 1

    def test_bind_releases_blocked_calls_in_order(self, system, stack):
        echo = stack.add_module(Echo(stack), bind=False)
        listener = stack.add_module(Listener(stack))
        for i in range(3):
            listener.call("echo", "ping", i)
        system.run()
        stack.bind("echo", echo)
        system.run()
        assert echo.calls == [0, 1, 2]
        assert stack.blocked_call_count("echo") == 0
        unblocked = system.trace.of_kind(TraceKind.CALL_UNBLOCKED)
        assert len(unblocked) == 3

    def test_in_flight_call_does_not_overtake_released_backlog(self):
        """A call whose CPU completion lands just after a bind must not
        jump ahead of calls issued earlier that blocked on the unbound
        service (regression: served [1, 0] instead of [0, 1]).

        The race needs the second call's dispatch completion (issue
        instant + call_cost) to land fractionally *after* the bind, so it
        carries an older heap seq than the released backlog's dispatch.
        """
        sys_ = System(n=1, seed=0)
        st = sys_.stack(0)
        echo = st.add_module(Echo(st), bind=False)
        listener = st.add_module(Listener(st))
        sys_.sim.schedule_at(0.0, listener.call, "echo", "ping", 0)
        sys_.sim.schedule_at(0.99999, listener.call, "echo", "ping", 1)
        sys_.sim.schedule_at(1.0, st.bind, "echo", echo)
        sys_.run()
        assert echo.calls == [0, 1]
        assert st.blocked_call_count("echo") == 0

    def test_backlog_drains_after_crash_kills_pending_drain(self):
        """A crash that lands between a bind and its scheduled drain task
        must not wedge the backlog: the drain task died with the old
        incarnation, and the restart path re-starts it on recovery
        (regression: the drain-pending flag stayed set forever and the
        backlog was stuck even across later binds)."""
        sys_ = System(n=1, seed=0)
        st = sys_.stack(0)
        echo = st.add_module(Echo(st), bind=False)
        listener = st.add_module(Listener(st))
        listener.call("echo", "ping", 0)
        sys_.run()  # the call blocks on the unbound service
        st.bind("echo", echo)  # schedules the 0-cost drain task...
        st.machine.crash()  # ...which dies with the old incarnation
        assert echo.calls == []  # the drain really was killed
        st.machine.recover()  # restart protocol re-starts the drain
        sys_.run()
        assert echo.calls == [0]
        assert st.blocked_call_count("echo") == 0

    def test_blocked_time_is_accounted(self, system, stack):
        echo = stack.add_module(Echo(stack), bind=False)
        listener = stack.add_module(Listener(stack))
        listener.call("echo", "ping", 1)
        system.run()
        system.sim.schedule(0.5, stack.bind, "echo", echo)
        system.run()
        assert stack.blocked_time_total == pytest.approx(0.5, abs=1e-3)

    def test_unbind_then_call_blocks_again(self, system, stack):
        echo = stack.add_module(Echo(stack))
        listener = stack.add_module(Listener(stack))
        stack.unbind("echo")
        listener.call("echo", "ping", 5)
        system.run()
        assert echo.calls == []
        stack.bind("echo", echo)
        system.run()
        assert echo.calls == [5]


class TestResponses:
    def test_unbound_module_can_still_respond(self, system, stack):
        """Paper, Section 2: a module can respond even after unbind."""
        echo = stack.add_module(Echo(stack))
        listener = stack.add_module(Listener(stack))
        listener.call("echo", "ping", 1)
        system.run()
        stack.unbind("echo")
        echo.respond("echo", "pong", "late")
        system.run()
        assert "late" in listener.heard

    def test_response_to_all_subscribers(self, system, stack):
        stack.add_module(Echo(stack))
        l1 = stack.add_module(Listener(stack))
        l2 = stack.add_module(Listener(stack))
        l1.call("echo", "ping", 9)
        system.run()
        assert l1.heard == [9] and l2.heard == [9]

    def test_respond_on_unprovided_service_rejected(self, system, stack):
        listener = stack.add_module(Listener(stack))
        with pytest.raises(KernelError):
            listener.respond("echo", "pong", 1)


class TestResponseBuffering:
    def test_unclaimed_response_buffered_and_replayed(self, system, stack):
        """Paper, Section 2: responses complete when the module is added."""
        echo = stack.add_module(Echo(stack))
        echo.respond("echo", "pong", "early")
        system.run()
        assert stack.buffered_response_count("echo") == 1
        late_listener = stack.add_module(Listener(stack))
        system.run()
        assert late_listener.heard == ["early"]
        assert stack.buffered_response_count("echo") == 0

    def test_disclaimed_response_buffered(self, system, stack):
        echo = stack.add_module(Echo(stack))
        stack.add_module(Listener(stack, claim=False))
        echo.respond("echo", "pong", "nobody-wants-me")
        system.run()
        assert stack.buffered_response_count("echo") == 1
        claimer = stack.add_module(Listener(stack, claim=True))
        system.run()
        assert claimer.heard == ["nobody-wants-me"]

    def test_buffered_replay_preserves_order(self, system, stack):
        echo = stack.add_module(Echo(stack))
        for i in range(3):
            echo.respond("echo", "pong", i)
        system.run()
        listener = stack.add_module(Listener(stack))
        system.run()
        assert listener.heard == [0, 1, 2]


class TestQueries:
    def test_query_returns_synchronously(self, system, stack):
        stack.add_module(Echo(stack))
        listener = stack.add_module(Listener(stack))
        listener.call("echo", "ping", 1)
        system.run()
        assert stack.query("echo", "count") == 1

    def test_query_unbound_raises(self, stack):
        with pytest.raises(UnknownServiceError):
            stack.query("echo", "count")

    def test_query_unknown_name_raises(self, system, stack):
        stack.add_module(Echo(stack))
        with pytest.raises(KernelError):
            stack.query("echo", "nosuch")


class TestModuleLifecycle:
    def test_duplicate_names_rejected(self, stack):
        stack.add_module(Echo(stack, reply=True))
        m2 = Echo(stack)
        m2.name = list(stack.modules)[0]
        with pytest.raises(KernelError):
            stack.add_module(m2, bind=False)

    def test_wrong_stack_rejected(self, system):
        s0, s1 = system.stack(0), system.stack(1)
        m = Echo(s0)
        with pytest.raises(KernelError):
            s1.add_module(m)

    def test_remove_unbinds_and_stops(self, system, stack):
        echo = stack.add_module(Echo(stack))
        stack.remove_module(echo.name)
        assert not stack.bindings.is_bound("echo")
        assert echo.stopped
        assert echo.name not in stack.modules

    def test_remove_missing_raises(self, stack):
        with pytest.raises(ModuleNotInStackError):
            stack.remove_module("ghost")

    def test_fresh_module_names_unique(self, stack):
        names = {Echo(stack).name for _ in range(5)}
        assert len(names) == 5

    def test_multiple_providers_one_bound(self, system, stack):
        e1 = stack.add_module(Echo(stack))
        e2 = stack.add_module(Echo(stack), bind=False)
        assert stack.bound_module("echo") is e1
        assert set(stack.modules_providing("echo")) == {e1, e2}


class TestHandlerRegistrationGuards:
    def test_export_call_requires_provides(self, stack):
        listener = Listener(stack)
        with pytest.raises(KernelError):
            listener.export_call("echo", "x", lambda: None)

    def test_subscribe_requires_requires(self, stack):
        echo = Echo(stack)
        with pytest.raises(KernelError):
            echo.subscribe("other", "ev", lambda: None)


class TestDispatchFastPath:
    """The cached-binding fast path must be observably identical to the
    uncached slow path: same providers, same ordering, correct
    invalidation on every rebind/re-registration."""

    def test_warm_cache_keeps_dispatching(self, system, stack):
        echo = stack.add_module(Echo(stack))
        listener = stack.add_module(Listener(stack))
        for i in range(5):
            listener.call("echo", "ping", i)
        system.run()
        assert echo.calls == [0, 1, 2, 3, 4]

    def test_rebind_to_other_module_invalidates_cache(self, system, stack):
        e1 = stack.add_module(Echo(stack))
        listener = stack.add_module(Listener(stack))
        listener.call("echo", "ping", "first")
        system.run()  # warm the (echo, ping) cache entry with e1
        stack.unbind("echo")
        e2 = stack.add_module(Echo(stack))  # binds e2
        listener.call("echo", "ping", "second")
        system.run()
        assert e1.calls == ["first"]
        assert e2.calls == ["second"]

    def test_reexported_handler_replaces_cached_one(self, system, stack):
        echo = stack.add_module(Echo(stack))
        listener = stack.add_module(Listener(stack))
        listener.call("echo", "ping", 1)
        system.run()  # cache now holds the original handler
        swapped = []
        echo.export_call("echo", "ping", swapped.append)
        listener.call("echo", "ping", 2)
        system.run()
        assert echo.calls == [1]
        assert swapped == [2]

    def test_dispatch_during_backlog_takes_slow_path(self, system):
        """A call on a *different* service while some backlog exists must
        still dispatch (the global blocked-counter guard is conservative,
        not wrong)."""
        stack = system.stack(0)
        dormant = stack.add_module(Echo(stack), bind=False)
        other = stack.add_module(OtherService(stack))
        stack.issue_call(None, "echo", "ping", (0,))  # blocks (unbound)
        system.run()
        assert stack.blocked_call_count() == 1
        stack.issue_call(None, "other", "go", ("x",))
        system.run()
        assert other.got == ["x"]  # dispatched despite the backlog
        stack.bind("echo", dormant)
        system.run()
        assert dormant.calls == [0]

    def test_negative_call_cost_rejected(self, system, stack):
        stack.add_module(Echo(stack))
        with pytest.raises(KernelError, match="negative call cost"):
            stack.issue_call(None, "echo", "ping", (1,), cost=-1.0)

    def test_dispatch_counters(self, system, stack):
        echo = stack.add_module(Echo(stack))
        listener = stack.add_module(Listener(stack))
        listener.call("echo", "ping", 1)  # 1 call -> 1 response (pong)
        system.run()
        assert stack.calls_issued == 1
        assert stack.responses_issued == 1
        assert echo.calls == [1]


class OtherService(Module):
    PROVIDES = ("other",)
    PROTOCOL = "other"

    def __init__(self, stack):
        super().__init__(stack)
        self.got = []
        self.export_call("other", "go", self.got.append)


class TestBatchedDrain:
    """Blocked-call backlogs drain in one 0-cost CPU task when nothing
    else is scheduled at the release instant — and fall back to the
    one-task-per-call chain (the exact pre-batching schedule) when an
    equal-time event exists."""

    def test_quiet_release_uses_one_task(self):
        sys_ = System(n=1, seed=0)
        st = sys_.stack(0)
        echo = st.add_module(Echo(st, reply=False), bind=False)
        for i in range(5):
            st.issue_call(None, "echo", "ping", (i,))
        sys_.run()
        before = st.machine.tasks_executed
        st.bind("echo", echo)
        sys_.run()
        assert echo.calls == [0, 1, 2, 3, 4]
        assert st.machine.tasks_executed - before == 1  # one batched drain
        assert st.blocked_call_count("echo") == 0

    def test_already_fired_same_instant_event_still_batches(self):
        """A same-instant event that fires *before* the drain task does not
        prevent batching: by the time the drain runs, the heap is quiet."""
        sys_ = System(n=1, seed=0)
        st = sys_.stack(0)
        echo = st.add_module(Echo(st, reply=False), bind=False)
        for i in range(3):
            st.issue_call(None, "echo", "ping", (i,))
        sys_.run()
        interleaved = []
        sys_.sim.schedule_at(1.0, st.bind, "echo", echo)
        sys_.sim.schedule_at(1.0, interleaved.append, "bystander")
        before = st.machine.tasks_executed
        sys_.run()
        assert echo.calls == [0, 1, 2]
        assert interleaved == ["bystander"]
        assert st.machine.tasks_executed - before == 1  # one batched drain

    def test_handler_scheduling_same_instant_work_falls_back_to_chain(self):
        """A drained handler that schedules zero-delay work forces the
        chain fallback for the rest of the backlog, reproducing the exact
        pre-batching interleaving: the next backlog call is served before
        the handler's same-instant work, the rest after it."""
        sys_ = System(n=1, seed=0)
        st = sys_.stack(0)
        order = []

        class Noisy(Module):
            PROVIDES = ("svc",)
            PROTOCOL = "noisy"

            def __init__(self, stack):
                super().__init__(stack)
                self.export_call("svc", "go", self._go)

            def _go(self, value):
                order.append(("call", value))
                if value == 0:
                    self.set_timer(0.0, order.append, ("timer", value))

        mod = st.add_module(Noisy(st), bind=False)
        for i in range(3):
            st.issue_call(None, "svc", "go", (i,))
        sys_.run()
        before = st.machine.tasks_executed
        st.bind("svc", mod)
        sys_.run()
        # Pre-batching chain order: c0 invoked, c1's drain was armed
        # before c0's handler ran (so c1 beats the timer), then the
        # timer, then c2 — the batch fallback must reproduce it exactly.
        assert order == [("call", 0), ("call", 1), ("timer", 0), ("call", 2)]
        assert st.machine.tasks_executed - before == 2  # batch + chain re-arm

    def test_unbind_mid_drain_pauses_until_next_bind(self):
        """A released handler that unbinds its own service must stop the
        batch: the rest of the backlog waits for the next bind."""
        sys_ = System(n=1, seed=0)
        st = sys_.stack(0)

        class SelfUnbinder(Module):
            PROVIDES = ("svc",)
            PROTOCOL = "selfunbinder"

            def __init__(self, stack):
                super().__init__(stack)
                self.calls = []
                self.export_call("svc", "go", self._go)

            def _go(self, value):
                self.calls.append(value)
                if value == 0:
                    self.stack.unbind("svc")

        mod = st.add_module(SelfUnbinder(st), bind=False)
        for i in range(3):
            st.issue_call(None, "svc", "go", (i,))
        sys_.run()
        st.bind("svc", mod)
        sys_.run()
        assert mod.calls == [0]  # the handler unbound itself mid-drain
        assert st.blocked_call_count("svc") == 2
        st.bind("svc", mod)
        sys_.run()
        assert mod.calls == [0, 1, 2]

    def test_cpu_occupying_handler_falls_back_to_chain(self):
        """A drained handler that issues CPU-costing work must push the
        rest of the backlog onto the chained schedule: the next drain
        task starts only when the CPU frees (``busy_until``), exactly as
        the unbatched kernel staggered it (regression: the batch kept
        draining at the release instant, shifting every later dispatch
        ~one call cost earlier)."""
        sys_ = System(n=1, seed=0)
        st = sys_.stack(0)
        events = []

        class Busy(Module):
            PROVIDES = ("svc",)
            PROTOCOL = "busy"

            def __init__(self, stack):
                super().__init__(stack)
                self.export_call("svc", "go", self._go)
                self.export_call("svc", "follow", self._follow)

            def _go(self, value):
                events.append(("go", value, round(self.now * 1e6)))
                self.call("svc", "follow", value)  # default (nonzero) cost

            def _follow(self, value):
                events.append(("follow", value, round(self.now * 1e6)))

        mod = st.add_module(Busy(st), bind=False)
        for i in range(3):
            st.issue_call(None, "svc", "go", (i,))
        sys_.run()
        st.bind("svc", mod)
        sys_.run()
        # Timing fixed by the pre-batching kernel (call_cost = 10 us):
        # go2 waits for go0's follow-up to occupy the CPU; the follow-ups
        # then drain in FIFO completion order.
        assert events == [
            ("go", 0, 30), ("go", 1, 30), ("go", 2, 40),
            ("follow", 0, 50), ("follow", 1, 60), ("follow", 2, 60),
        ]

    def test_crash_mid_drain_stops_batch(self):
        """A handler that crashes the machine mid-batch must not drain the
        rest; recovery restarts the drain in the new incarnation."""
        sys_ = System(n=1, seed=0)
        st = sys_.stack(0)

        class Crasher(Module):
            PROVIDES = ("svc",)
            PROTOCOL = "crasher"

            def __init__(self, stack):
                super().__init__(stack)
                self.calls = []
                self.export_call("svc", "go", self._go)

            def _go(self, value):
                self.calls.append(value)
                if value == 0:
                    self.stack.machine.crash()

        mod = st.add_module(Crasher(st), bind=False)
        for i in range(3):
            st.issue_call(None, "svc", "go", (i,))
        sys_.run()
        st.bind("svc", mod)
        sys_.run()
        assert mod.calls == [0]
        assert st.blocked_call_count("svc") == 2
        st.machine.recover()  # restart protocol re-releases the backlog
        sys_.run()
        assert mod.calls == [0, 1, 2]


class TestStandaloneTraceModes:
    def test_default_is_null_trace(self):
        sim = Simulator(seed=0)
        st = Stack(Machine(sim, 0))
        assert st.trace is NULL_TRACE
        st.issue_call(None, "nosuch", "x", ())  # blocks silently, no records
        sim.run()
        assert len(NULL_TRACE) == 0

    def test_trace_false_is_null_trace(self):
        sim = Simulator(seed=0)
        assert Stack(Machine(sim, 0), trace=False).trace is NULL_TRACE

    def test_trace_true_gets_private_recorder(self):
        sim = Simulator(seed=0)
        st = Stack(Machine(sim, 0), trace=True)
        assert isinstance(st.trace, TraceRecorder)
        assert st.trace is not NULL_TRACE
        st2 = Stack(Machine(sim, 1), trace=True)
        assert st.trace is not st2.trace

    def test_keep_filtered_recorder_still_records_blocks(self):
        """A structural recorder must keep blocked/unblocked records (and
        their lazily-built call ids) while dropping the call firehose."""
        sim = Simulator(seed=0)
        machine = Machine(sim, 3)
        recorder = TraceRecorder(keep=[TraceKind.CALL_BLOCKED, TraceKind.CALL_UNBLOCKED])
        st = Stack(machine, trace=recorder)
        echo = Echo(st, reply=False)
        st.add_module(echo, bind=False)
        st.issue_call(None, "echo", "ping", (9,))
        sim.run()
        st.bind("echo", echo)
        sim.run()
        kinds = [e.kind for e in recorder]
        assert kinds == [TraceKind.CALL_BLOCKED, TraceKind.CALL_UNBLOCKED]
        assert [e.call_id for e in recorder] == ["3:1", "3:1"]


class TestQueryFastPath:
    """The (service, query) resolution cache (PR 5 kernel follow-up)."""

    def _stack(self):
        sys_ = System(n=1, seed=0)
        st = sys_.stack(0)
        echo = st.add_module(Echo(st))
        return sys_, st, echo

    def test_cached_query_returns_live_data(self):
        sys_, st, echo = self._stack()
        assert st.query("echo", "count") == 0
        st.issue_call(None, "echo", "ping", ("a",))
        sys_.run()
        # The cached handler reads the provider's live state.
        assert st.query("echo", "count") == 1
        assert ("echo", "count") in st._query_cache

    def test_bind_unbind_invalidate(self):
        sys_, st, echo = self._stack()
        st.query("echo", "count")
        st.unbind("echo")
        assert st._query_cache == {}
        with pytest.raises(UnknownServiceError):
            st.query("echo", "count")
        # Re-bind a *different* provider: the query must resolve to it.
        other = Echo(st)
        st.add_module(other, bind=False)
        st.bind("echo", other)
        st.issue_call(None, "echo", "ping", ("b",))
        sys_.run()
        assert st.query("echo", "count") == 1  # other's count, not echo's
        assert echo.calls == []

    def test_reexport_invalidates_single_entry(self):
        sys_, st, echo = self._stack()
        assert st.query("echo", "count") == 0
        echo.export_query("echo", "count", lambda: 999)
        assert st.query("echo", "count") == 999

    def test_unknown_query_still_raises(self):
        sys_, st, echo = self._stack()
        with pytest.raises(KernelError):
            st.query("echo", "no-such-query")
