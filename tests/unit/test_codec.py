"""Wire-codec properties: round-trip fidelity and hostile-input safety.

Two families of guarantees, mirroring the two reasons the codec exists:

* **round-trip** — every payload shape the stack actually sends (nested
  tagged tuples of primitives, the registered ``NetMessage`` class,
  numpy scalar look-alikes from the rng layer) survives
  encode → decode *identically*, types included;
* **trust boundary** — arbitrary and corrupted byte strings never raise
  anything but :class:`~repro.errors.CodecError` out of the decoder,
  and never execute anything: unknown tags, unknown wire-type names,
  truncations at every offset, bad headers, depth bombs.
"""

from __future__ import annotations

import math
import random
import struct

import pytest

from repro.errors import CodecError
from repro.net.message import NetMessage
from repro.runtime.codec import (
    HEADER,
    MAGIC,
    MAX_DEPTH,
    WIRE_VERSION,
    decode_datagram,
    decode_value,
    encode_datagram,
    encode_value,
    register_wire_type,
    registered_wire_types,
)

# Payload shapes lifted from what the protocol modules really send:
# rp2p data/ack envelopes, FD heartbeats, rbcast frames, consensus
# estimates, replacement NIL/NEW_ABCAST frames, workload keys.
REAL_FRAMES = [
    ("rp2p.data", 7, 0, ("fd.hb", 3, 12)),
    ("rp2p.ack", 7, 0),
    ("rbc", ("ct", 1, 4, ("est", 2, ("wl", 0, 17))), 256),
    ("r.nil", 3, (0, 42), ("wl", 0, 17), 256),
    ("r.new", 1, (2, 9), "abcast-token"),
    ("gm.op", "expel", 4, 0),
]

ROUND_TRIP_VALUES = REAL_FRAMES + [
    None,
    True,
    False,
    0,
    -1,
    2**63 - 1,
    -(2**63),
    2**64,            # big-int path (> int64)
    -(2**200),
    0.0,
    -0.0,
    2.5,
    float("inf"),
    float("-inf"),
    "",
    "héllo ∞",
    b"",
    b"\x00\xff raw",
    (),
    (1, (2, (3, (4,)))),
    [],
    [1, "two", 3.0, None],
    {},
    {"k": (1, 2), 3: [True, False]},
    set(),
    {1, 2, 3},
    frozenset({("a", 1), ("b", 2)}),
    {"view": frozenset({0, 1, 2}), "ops": [("join", 2, 0)]},
]


@pytest.mark.parametrize("value", ROUND_TRIP_VALUES, ids=repr)
def test_value_round_trip(value):
    decoded = decode_value(encode_value(value))
    assert decoded == value
    assert type(decoded) is type(value)


def test_nan_round_trips_as_nan():
    decoded = decode_value(encode_value(float("nan")))
    assert math.isnan(decoded)


def test_bool_identity_survives_containers():
    # True == 1 in Python; the tags must keep them distinct in context.
    decoded = decode_value(encode_value((True, 1, False, 0)))
    assert [type(x) for x in decoded] == [bool, int, bool, int]


def test_datagram_round_trip_envelope():
    for frame in REAL_FRAMES:
        src, dst, payload, size = decode_datagram(
            encode_datagram(2, 5, frame, 321)
        )
        assert (src, dst, payload, size) == (2, 5, frame, 321)


def test_netmessage_round_trips_via_registration():
    assert "net.NetMessage" in registered_wire_types()
    message = NetMessage(
        src=1, dst=2, payload={"inner": (1, frozenset({3}))}, size_bytes=64
    )
    decoded = decode_value(encode_value(message))
    assert decoded == message and type(decoded) is NetMessage


def test_numpy_scalars_encode_as_plain_numbers():
    np = pytest.importorskip("numpy")
    decoded = decode_value(encode_value((np.int64(7), np.float64(2.5))))
    assert decoded == (7, 2.5)
    assert [type(x) for x in decoded] == [int, float]


def test_unencodable_type_raises_codec_error():
    with pytest.raises(CodecError):
        encode_value(object())
    with pytest.raises(CodecError):
        encode_value(("fine", object()))


def test_register_wire_type_idempotent_and_name_clash():
    class _Probe:
        pass

    register_wire_type("test.probe", _Probe, lambda p: (), lambda f: _Probe())
    # Same name + same class: idempotent.
    register_wire_type("test.probe", _Probe, lambda p: (), lambda f: _Probe())

    class _Other:
        pass

    with pytest.raises(CodecError):
        register_wire_type("test.probe", _Other, lambda p: (), lambda f: _Other())


def test_unknown_wire_type_name_is_a_decode_error_not_a_constructor():
    # Hand-craft an `x` frame naming a type the receiver never registered.
    name = b"definitely.not.registered"
    data = b"x" + struct.pack("!I", len(name)) + name + encode_value(())
    with pytest.raises(CodecError):
        decode_value(data)


def test_depth_bomb_refused_on_both_sides():
    nested = ()
    for _ in range(MAX_DEPTH + 1):
        nested = (nested,)
    with pytest.raises(CodecError):
        encode_value(nested)
    # Decoder side: a crafted run of tuple tags nesting past the bound.
    bomb = (b"t" + struct.pack("!I", 1)) * (MAX_DEPTH + 2) + b"N"
    with pytest.raises(CodecError):
        decode_value(bomb)


# --------------------------------------------------------------------- #
# Hostile datagrams
# --------------------------------------------------------------------- #
def test_header_malformations():
    good = encode_datagram(0, 1, ("ok",), 8)
    cases = [
        b"",                                        # empty
        good[: HEADER.size - 1],                    # shorter than header
        b"XX" + good[2:],                           # bad magic
        MAGIC + bytes([WIRE_VERSION + 1]) + good[3:],  # unknown version
        good[:3] + b"\x01" + good[4:],              # non-zero flags byte
        good + b"trailing",                         # trailing garbage
        good[:-1],                                  # truncated payload
    ]
    for data in cases:
        with pytest.raises(CodecError):
            decode_datagram(data)


def test_truncation_at_every_offset():
    data = encode_datagram(1, 2, REAL_FRAMES[2], 256)
    for cut in range(len(data)):
        with pytest.raises(CodecError):
            decode_datagram(data[:cut])


def test_fuzzed_bytes_never_raise_anything_but_codec_error():
    rng = random.Random(0)
    survived = 0
    for _ in range(2000):
        blob = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 80)))
        try:
            decode_datagram(blob)
            survived += 1
        except CodecError:
            pass
    # Random bytes essentially never form a valid datagram (magic +
    # version + exact-length payload); mostly this asserts "no other
    # exception type escaped".
    assert survived == 0


def test_bitflip_fuzz_on_valid_datagrams():
    rng = random.Random(1)
    data = encode_datagram(0, 2, REAL_FRAMES[0], 96)
    for _ in range(500):
        corrupted = bytearray(data)
        for _flip in range(rng.randrange(1, 4)):
            corrupted[rng.randrange(len(corrupted))] ^= 1 << rng.randrange(8)
        try:
            decode_datagram(bytes(corrupted))
        except CodecError:
            pass  # drop is the contract; any other exception fails the test
