"""CLI tests for ``python -m repro.analysis``: exit codes, JSON, baseline."""

import json
from pathlib import Path

import pytest

from repro.analysis.cli import main

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE = str(REPO_ROOT / "tests" / "fixtures" / "analysis_proj" / "repro")
SRC_TREE = str(REPO_ROOT / "src" / "repro")
EMPTY_BASELINE = str(REPO_ROOT / "analysis-baseline.json")


def test_exit_zero_on_clean_tree(capsys):
    rc = main([SRC_TREE, "--strict", "--baseline", EMPTY_BASELINE])
    out = capsys.readouterr().out
    assert rc == 0
    assert "0 finding(s)" in out


def test_exit_one_on_findings(capsys):
    rc = main([FIXTURE, "--baseline", EMPTY_BASELINE])
    out = capsys.readouterr().out
    assert rc == 1
    assert "R1 " in out and "R6 " in out
    # Renderings are path:line:col: CODE message, sorted by (path, line, col).
    keys = []
    for line in out.splitlines():
        if ": R" not in line and ": SUP" not in line:
            continue
        path, lineno, col, _rest = line.split(":", 3)
        keys.append((path, int(lineno), int(col)))
    assert keys == sorted(keys)


def test_exit_two_on_bad_rule_code(capsys):
    rc = main([FIXTURE, "--rules", "R9", "--baseline", EMPTY_BASELINE])
    err = capsys.readouterr().err
    assert rc == 2
    assert "unknown rule code" in err


def test_exit_two_on_bad_baseline_version(tmp_path, capsys):
    bad = tmp_path / "baseline.json"
    bad.write_text('{"version": 99, "findings": []}')
    rc = main([FIXTURE, "--baseline", str(bad)])
    err = capsys.readouterr().err
    assert rc == 2
    assert "baseline version" in err


def test_json_report_shape(tmp_path, capsys):
    out_path = tmp_path / "report.json"
    rc = main(
        [FIXTURE, "--json", "--json-out", str(out_path), "--baseline", EMPTY_BASELINE]
    )
    assert rc == 1
    stdout_report = json.loads(capsys.readouterr().out)
    file_report = json.loads(out_path.read_text())
    assert stdout_report == file_report
    assert file_report["version"] == 1
    assert file_report["rules"] == ["R1", "R2", "R3", "R4", "R5", "R6"]
    assert file_report["suppressed"] == 2
    assert file_report["baselined"] == 0
    counts = file_report["counts"]
    assert all(counts[code] >= 1 for code in ("R1", "R2", "R3", "R4", "R5", "R6"))
    for entry in file_report["findings"]:
        assert set(entry) >= {"rule", "path", "line", "col", "message", "fingerprint"}


def test_json_report_is_deterministic(tmp_path):
    a, b = tmp_path / "a.json", tmp_path / "b.json"
    main([FIXTURE, "--json-out", str(a), "--baseline", EMPTY_BASELINE])
    main([FIXTURE, "--json-out", str(b), "--baseline", EMPTY_BASELINE])
    assert a.read_text() == b.read_text()


def test_write_baseline_then_rerun_is_grandfathered(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    rc = main([FIXTURE, "--baseline", str(baseline), "--write-baseline"])
    assert rc == 0
    capsys.readouterr()
    # Rule findings are grandfathered now; only post-baseline suppression
    # hygiene (the planted unjustified marker) remains active.
    rc = main([FIXTURE, "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert "13 baselined" in out
    active = [line for line in out.splitlines() if ": R" in line]
    assert not active
    assert rc == 1  # the SUP hygiene finding still gates


def test_stale_baseline_entries_reported(tmp_path, capsys):
    baseline = tmp_path / "baseline.json"
    baseline.write_text(
        json.dumps(
            {
                "version": 1,
                "findings": [
                    {
                        "fingerprint": "deadbeefdeadbeefdeadbeef",
                        "rule": "R1",
                        "path": "gone.py",
                        "scope": "",
                        "snippet": "import time",
                    }
                ],
            }
        )
    )
    main([FIXTURE, "--baseline", str(baseline)])
    out = capsys.readouterr().out
    assert "1 stale baseline" in out


def test_list_rules(capsys):
    rc = main(["--list-rules"])
    out = capsys.readouterr().out
    assert rc == 0
    for code in ("R1", "R2", "R3", "R4", "R5", "R6"):
        assert code in out


def test_no_paths_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main([])
    assert excinfo.value.code == 2
