"""Unit tests: the vectorised batch-delivery path is exactly sequential.

``SimNetwork.send_many`` is an optimisation, not a semantic: delivery
times, stream consumption, counters and crash handling must be
bit-identical to the same messages pushed one ``send()`` at a time.
Same for the two layers under it — ``Scheduler.schedule_burst_fast``
versus scalar pushes, and ``LatencyModel.sample_buffered_block`` versus
scalar buffered draws.
"""

import pytest

from repro.errors import ScheduleInPastError
from repro.net import NetMessage, SimNetwork, SwitchedLan
from repro.sim import Machine, Simulator, lan_latency
from repro.sim.latency import (
    ConstantLatency,
    ExponentialLatency,
    LogNormalLatency,
    ShiftedLatency,
    UniformLatency,
)
from repro.sim.random import BufferedDraws, RngRegistry


def _net(seed=3, lan=None, n=4):
    sim = Simulator(seed=seed)
    machines = [Machine(sim, i) for i in range(n)]
    net = SimNetwork(sim, machines, lan or SwitchedLan(latency=lan_latency()))
    log = []
    for m in machines:
        net.attach(m.machine_id, lambda msg, t, log=log: log.append((t, msg.src, msg.dst)))
    return sim, machines, net, log


def _batch(k, n=4):
    return [NetMessage(j % n, (j + 1) % n, f"m{j}", 256 + j) for j in range(k)]


class TestSendManyEquivalence:
    def _run(self, use_batch, lan=None, crash=None, k=12):
        sim, machines, net, log = _net(lan=lan)
        if crash is not None:
            machines[crash].crash()
        batch = _batch(k)
        if use_batch:
            net.send_many(batch)
        else:
            for message in batch:
                net.send(message)
        sim.run()
        return log, net.stats()

    def test_fast_path_matches_sequential_sends(self):
        log_a, stats_a = self._run(use_batch=False)
        log_b, stats_b = self._run(use_batch=True)
        assert log_a == log_b
        assert stats_a == stats_b

    def test_impaired_fallback_matches_sequential_sends(self):
        lan = SwitchedLan(latency=lan_latency(), loss_rate=0.3, duplicate_rate=0.2)
        log_a, stats_a = self._run(use_batch=False, lan=lan)
        log_b, stats_b = self._run(use_batch=True, lan=lan)
        assert log_a == log_b
        assert stats_a == stats_b

    def test_crashed_sender_skipped_without_consuming_draws(self):
        log_a, stats_a = self._run(use_batch=False, crash=1)
        log_b, stats_b = self._run(use_batch=True, crash=1)
        assert log_a == log_b
        assert stats_a == stats_b

    def test_empty_and_singleton_batches(self):
        sim, _machines, net, log = _net()
        net.send_many([])
        net.send_many([NetMessage(0, 1, "solo", 128)])
        sim.run()
        assert [(s, d) for _t, s, d in log] == [(0, 1)]


class TestScheduleBurstFast:
    def test_burst_matches_scalar_pushes(self):
        fired_a, fired_b = [], []
        sim_a = Simulator(seed=1)
        for i, t in enumerate((0.3, 0.1, 0.2, 0.1)):
            sim_a.schedule_at_fast(t, fired_a.append, i)
        sim_a.run()
        sim_b = Simulator(seed=1)
        sim_b.schedule_burst_fast((0.3, 0.1, 0.2, 0.1), fired_b.append, (0, 1, 2, 3))
        sim_b.run()
        assert fired_a == fired_b == [1, 3, 2, 0]

    def test_burst_rejects_past_times(self):
        sim = Simulator(seed=1)
        sim.schedule_fast(1.0, lambda: None)
        sim.run()
        with pytest.raises(ScheduleInPastError):
            sim.schedule_burst_fast((0.5,), lambda x: None, ("late",))


class TestSampleBufferedBlock:
    MODELS = [
        ConstantLatency(1e-4),
        UniformLatency(1e-5, 2e-4),
        ExponentialLatency(mean_tail=5e-5, floor=1e-5),
        LogNormalLatency(tail_mean=3e-5, sigma=0.6, floor=6e-5),
        ShiftedLatency(UniformLatency(0.0, 1e-4), 2e-5),
    ]

    @pytest.mark.parametrize("model", MODELS, ids=lambda m: type(m).__name__)
    def test_block_matches_scalar_draws(self, model):
        scalar = BufferedDraws(RngRegistry(seed=9).stream("lat"))
        block = BufferedDraws(RngRegistry(seed=9).stream("lat"))
        expected = [model.sample_buffered(scalar) for _ in range(700)]
        got = []
        for count in (1, 5, 256, 300, 138):
            got.extend(model.sample_buffered_block(block, count))
        assert got == expected

    def test_block_and_scalar_interleave_stay_aligned(self):
        model = UniformLatency(0.0, 1.0)
        scalar = BufferedDraws(RngRegistry(seed=4).stream("lat"))
        mixed = BufferedDraws(RngRegistry(seed=4).stream("lat"))
        expected = [model.sample_buffered(scalar) for _ in range(40)]
        got = model.sample_buffered_block(mixed, 10)
        got += [model.sample_buffered(mixed) for _ in range(20)]
        got += model.sample_buffered_block(mixed, 10)
        assert got == expected

    def test_random_block_matches_scalar(self):
        scalar = BufferedDraws(RngRegistry(seed=2).stream("x"))
        block = BufferedDraws(RngRegistry(seed=2).stream("x"))
        expected = [scalar.random() for _ in range(600)]
        got = list(block.random_block(300)) + [block.random() for _ in range(100)]
        got += list(block.random_block(200))
        assert got == expected
