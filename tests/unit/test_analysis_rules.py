"""Plant-and-catch tests for the ``repro.analysis`` contract linter.

``tests/fixtures/analysis_proj/repro`` is a miniature project tree with one
deliberate violation per rule (plus clean counterparts on the same hazard).
These tests assert that every rule fires with the right code, location, and
message, that ``# repro: ignore[RULE]`` silences exactly the named rule, and
that the linter self-hosts cleanly over the real ``src/repro`` tree.
"""

from pathlib import Path

import pytest

from repro.analysis import ALL_RULES, Baseline, analyze
from repro.analysis.findings import Finding

REPO_ROOT = Path(__file__).resolve().parents[2]
FIXTURE = REPO_ROOT / "tests" / "fixtures" / "analysis_proj" / "repro"
SRC_TREE = REPO_ROOT / "src" / "repro"


@pytest.fixture(scope="module")
def fixture_result():
    return analyze([str(FIXTURE)])


@pytest.fixture(scope="module")
def fixture_strict_result():
    return analyze([str(FIXTURE)], strict=True)


def _rel(finding):
    return str(Path(finding.path).relative_to(FIXTURE))


def _by_file(result, name):
    return [f for f in result.findings if _rel(f).endswith(name)]


# ---------------------------------------------------------------------------
# One deliberate violation per rule: code, location, message.
# ---------------------------------------------------------------------------


def test_all_six_rules_fire(fixture_result):
    fired = {f.rule for f in fixture_result.findings}
    assert {"R1", "R2", "R3", "R4", "R5", "R6"} <= fired


def test_r1_seam_catches_stdlib_and_engine_imports(fixture_result):
    r1 = [f for f in _by_file(fixture_result, "abcast/bad_seam.py") if f.rule == "R1"]
    assert [(f.line, f.col) for f in r1] == [(3, 0), (5, 0)]
    assert "imports 'time'" in r1[0].message
    assert "Module API" in r1[0].message
    assert "sim engine internals (repro.sim.engine)" in r1[1].message


def test_r2_determinism_catches_all_four_hazards(fixture_result):
    r2 = [f for f in _by_file(fixture_result, "sim/bad_rng.py") if f.rule == "R2"]
    by_line = {f.line: f.message for f in r2}
    assert sorted(by_line) == [11, 12, 16, 19]
    assert "without a seed" in by_line[11]
    assert "wall clock" in by_line[12]
    assert "id() values differ across processes" in by_line[16]
    assert "iteration over a set feeds sends" in by_line[19]
    # Clean counterparts in the same file stay quiet: sorted() iteration
    # (line 23) and an explicitly seeded Random (line 30).
    assert {f.line for f in r2} == {11, 12, 16, 19}


def test_r3_wire_catches_pickle_and_unsupported_field(fixture_result):
    r3 = [f for f in _by_file(fixture_result, "net/badwire.py") if f.rule == "R3"]
    assert [f.line for f in r3] == [4, 30]
    assert "'pickle' import" in r3[0].message
    assert "fixture.BadFrame" in r3[1].message
    assert "BadFrame.blob" in r3[1].message
    assert "OpaqueBlob" in r3[1].message
    # GoodFrame (int + list[str]) registers without a finding.
    assert not any("GoodFrame" in f.message for f in r3)


def test_r4_restart_catches_timer_without_on_restart(fixture_result):
    r4 = [f for f in fixture_result.findings if f.rule == "R4"]
    assert len(r4) == 1
    assert _rel(r4[0]) == "fd/badtimer.py"
    assert r4[0].line == 6
    assert "LeakyTimer" in r4[0].message
    assert "on_restart" in r4[0].message
    # InheritsRearm (ancestor defines on_restart) and NoTimers are clean.


def test_r5_trace_catches_undeclared_and_nonstructural_kinds(fixture_result):
    r5 = {_rel(f): f for f in fixture_result.findings if f.rule == "R5"}
    assert set(r5) == {"dpu/emitter.py", "dpu/properties.py"}
    emitter = r5["dpu/emitter.py"]
    assert emitter.line == 8
    assert "TraceKind.REBOOTED" in emitter.message
    assert "not a declared member" in emitter.message
    checker = r5["dpu/properties.py"]
    assert checker.line == 9
    assert "non-structural TraceKind.CALL" in checker.message
    assert "STRUCTURAL_TRACE_KINDS" in checker.message


def test_r6_async_catches_blocking_call_in_async_def(fixture_result):
    r6 = [f for f in fixture_result.findings if f.rule == "R6"]
    assert len(r6) == 1
    assert _rel(r6[0]) == "runtime/blocking.py"
    assert r6[0].line == 9
    assert "time.sleep()" in r6[0].message
    assert "async def pump" in r6[0].message
    # pump_ok (await asyncio.sleep) and sync_helper stay quiet.


# ---------------------------------------------------------------------------
# Suppression semantics: ignore[RULE] silences exactly the named rule.
# ---------------------------------------------------------------------------


def test_justified_suppression_silences_the_named_rule(fixture_result):
    # bad_seam.py line 7 imports asyncio under `# repro: ignore[R1] -- ...`:
    # no R1 finding on that line, and the suppression is counted.
    seam = _by_file(fixture_result, "abcast/bad_seam.py")
    assert not any(f.rule == "R1" and f.line == 7 for f in seam)
    suppressed = {(s.rule, Path(s.path).name) for s in fixture_result.suppressed}
    assert ("R1", "bad_seam.py") in suppressed


def test_suppression_does_not_silence_other_rules(fixture_result):
    # bad_seam.py line 13 reads time.time() under an R1 suppression: the
    # R2 wall-clock finding on the same line must still fire.
    seam = _by_file(fixture_result, "abcast/bad_seam.py")
    assert any(f.rule == "R2" and f.line == 13 for f in seam)


def test_class_level_suppression_covers_the_class(fixture_result):
    # WaivedTimer arms a timer with no on_restart but sits under an
    # own-line `# repro: ignore[R4] -- ...`: no R4 finding for it.
    assert not any("WaivedTimer" in f.message for f in fixture_result.findings)
    assert any(s.rule == "R4" for s in fixture_result.suppressed)


def test_unjustified_suppression_is_inert_and_flagged(fixture_result):
    # bad_seam.py line 17: `# repro: ignore[R2]` with no justification.
    sup = [f for f in _by_file(fixture_result, "abcast/bad_seam.py") if f.rule == "SUP"]
    assert any(f.line == 17 and "without a justification" in f.message for f in sup)


def test_strict_mode_flags_unused_suppressions(fixture_strict_result):
    # bad_seam.py line 13 suppresses R1 but no R1 finding lands there.
    sup = [f for f in _by_file(fixture_strict_result, "abcast/bad_seam.py") if f.rule == "SUP"]
    assert any(f.line == 13 and "unused suppression for R1" in f.message for f in sup)
    # Non-strict runs do not flag it (grandfathered cleanups stay quiet).


def test_unused_suppression_not_flagged_without_strict(fixture_result):
    sup = [f for f in fixture_result.findings if f.rule == "SUP"]
    assert not any("unused suppression" in f.message for f in sup)


# ---------------------------------------------------------------------------
# Determinism, fingerprints, baseline.
# ---------------------------------------------------------------------------


def test_findings_are_sorted_and_deterministic(fixture_result):
    keys = [f.sort_key() for f in fixture_result.findings]
    assert keys == sorted(keys)
    again = analyze([str(FIXTURE)])
    assert [f.to_json() for f in again.findings] == [
        f.to_json() for f in fixture_result.findings
    ]


def test_fingerprints_are_line_number_independent():
    a = Finding(rule="R2", path="p.py", line=5, col=0, message="m", scope="f", snippet="x = 1")
    b = Finding(rule="R2", path="p.py", line=99, col=4, message="m", scope="f", snippet="x = 1")
    assert a.fingerprint == b.fingerprint
    c = Finding(rule="R2", path="p.py", line=5, col=0, message="m", scope="f", snippet="x = 2")
    assert a.fingerprint != c.fingerprint


def test_baseline_round_trip(tmp_path, fixture_result):
    path = tmp_path / "baseline.json"
    Baseline.write(path, fixture_result.findings)
    loaded = Baseline.load(path)
    rerun = analyze([str(FIXTURE)], baseline=loaded)
    assert not rerun.findings or all(f.rule == "SUP" for f in rerun.findings)
    assert len(rerun.baselined) == len(
        [f for f in fixture_result.findings if f.rule != "SUP"]
    )


def test_rule_selection_runs_only_named_rules():
    result = analyze([str(FIXTURE)], rules=("R3",))
    fired = {f.rule for f in result.findings}
    assert fired <= {"R3", "SUP"}
    assert "R3" in fired


def test_rule_registry_is_complete():
    assert list(ALL_RULES) == ["R1", "R2", "R3", "R4", "R5", "R6"]
    for code, (info, _run) in ALL_RULES.items():
        assert info.code == code
        assert info.summary


# ---------------------------------------------------------------------------
# Self-hosting: the real tree is clean with an EMPTY baseline.
# ---------------------------------------------------------------------------


def test_src_repro_is_clean_under_strict_empty_baseline():
    result = analyze([str(SRC_TREE)], strict=True)
    assert result.findings == [], "\n".join(f.render() for f in result.findings)


def test_checked_in_baseline_is_empty():
    baseline = Baseline.load(REPO_ROOT / "analysis-baseline.json")
    assert len(baseline) == 0
