"""Unit tests: the binding table (at most one provider per service)."""

import pytest

from repro.errors import KernelError, ServiceAlreadyBoundError
from repro.kernel import Module
from repro.kernel.binding import BindingTable


class Provider(Module):
    PROVIDES = ("svc",)
    PROTOCOL = "prov"

    def __init__(self, stack):
        super().__init__(stack)
        self.export_call("svc", "go", lambda: None)


@pytest.fixture
def stack(system):
    return system.stack(0)


class TestBindingTable:
    def test_bind_and_lookup(self, stack):
        table = BindingTable()
        m = Provider(stack)
        table.bind("svc", m)
        assert table.bound("svc") is m
        assert table.is_bound("svc")
        assert "svc" in table

    def test_double_bind_rejected(self, stack):
        table = BindingTable()
        m1, m2 = Provider(stack), Provider(stack)
        table.bind("svc", m1)
        with pytest.raises(ServiceAlreadyBoundError):
            table.bind("svc", m2)

    def test_rebinding_same_module_is_idempotent(self, stack):
        table = BindingTable()
        m = Provider(stack)
        table.bind("svc", m)
        table.bind("svc", m)  # no error
        assert table.bound("svc") is m

    def test_bind_requires_provides(self, stack):
        table = BindingTable()
        m = Provider(stack)
        with pytest.raises(KernelError):
            table.bind("other", m)

    def test_unbind_returns_module(self, stack):
        table = BindingTable()
        m = Provider(stack)
        table.bind("svc", m)
        assert table.unbind("svc") is m
        assert not table.is_bound("svc")

    def test_unbind_unbound_raises(self):
        with pytest.raises(KernelError):
            BindingTable().unbind("svc")

    def test_rebind_after_unbind(self, stack):
        table = BindingTable()
        m1, m2 = Provider(stack), Provider(stack)
        table.bind("svc", m1)
        table.unbind("svc")
        table.bind("svc", m2)
        assert table.bound("svc") is m2

    def test_services_of(self, stack):
        table = BindingTable()
        m = Provider(stack)
        table.bind("svc", m)
        assert table.services_of(m) == ["svc"]

    def test_as_dict(self, stack):
        table = BindingTable()
        m = Provider(stack)
        table.bind("svc", m)
        assert table.as_dict() == {"svc": m.name}
        assert len(table) == 1
