"""Unit tests: the trace recorder."""

from repro.kernel import TraceKind, TraceRecorder


class TestRecording:
    def test_records_in_order(self):
        tr = TraceRecorder()
        tr.record(1.0, TraceKind.BIND, 0, service="s")
        tr.record(2.0, TraceKind.UNBIND, 0, service="s")
        assert [e.kind for e in tr] == [TraceKind.BIND, TraceKind.UNBIND]
        assert len(tr) == 2

    def test_disabled_records_nothing(self):
        tr = TraceRecorder(enabled=False)
        tr.record(1.0, TraceKind.BIND, 0)
        assert len(tr) == 0

    def test_keep_filter(self):
        tr = TraceRecorder(keep=[TraceKind.CRASH])
        tr.record(1.0, TraceKind.BIND, 0)
        tr.record(2.0, TraceKind.CRASH, 1)
        assert [e.kind for e in tr] == [TraceKind.CRASH]

    def test_subscribers_called(self):
        tr = TraceRecorder()
        seen = []
        tr.subscribers.append(seen.append)
        tr.record(1.0, TraceKind.BIND, 0)
        assert len(seen) == 1

    def test_detail_access(self):
        tr = TraceRecorder()
        tr.record(1.0, TraceKind.CALL, 0, service="s", call_id="0:1", method="go")
        e = tr.events[0]
        assert e.get("call_id") == "0:1"
        assert e.get("missing", "dflt") == "dflt"


class TestQueries:
    def _populate(self):
        tr = TraceRecorder()
        tr.record(1.0, TraceKind.BIND, 0, service="a")
        tr.record(2.0, TraceKind.BIND, 1, service="b")
        tr.record(3.0, TraceKind.CRASH, 1)
        tr.record(4.0, TraceKind.CRASH, 1)  # duplicate crash record
        return tr

    def test_of_kind(self):
        tr = self._populate()
        assert len(tr.of_kind(TraceKind.BIND)) == 2
        assert len(tr.of_kind(TraceKind.BIND, TraceKind.CRASH)) == 4

    def test_for_stack(self):
        tr = self._populate()
        assert len(tr.for_stack(1)) == 3

    def test_for_service(self):
        tr = self._populate()
        assert len(tr.for_service("a")) == 1

    def test_crashes_first_occurrence_wins(self):
        tr = self._populate()
        assert tr.crashes() == {1: 3.0}

    def test_crashed_before(self):
        tr = self._populate()
        assert tr.crashed_before(1, 3.0)
        assert not tr.crashed_before(1, 2.9)
        assert not tr.crashed_before(0, 10.0)

    def test_counts(self):
        tr = self._populate()
        assert tr.counts() == {"bind": 2, "crash": 2}

    def test_clear(self):
        tr = self._populate()
        tr.clear()
        assert len(tr) == 0
