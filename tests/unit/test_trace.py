"""Unit tests: the trace recorder and the slotted record type."""

import pytest

from repro.kernel import NULL_TRACE, TraceEvent, TraceKind, TraceRecord, TraceRecorder


class TestRecording:
    def test_records_in_order(self):
        tr = TraceRecorder()
        tr.record(1.0, TraceKind.BIND, 0, service="s")
        tr.record(2.0, TraceKind.UNBIND, 0, service="s")
        assert [e.kind for e in tr] == [TraceKind.BIND, TraceKind.UNBIND]
        assert len(tr) == 2

    def test_disabled_records_nothing(self):
        tr = TraceRecorder(enabled=False)
        tr.record(1.0, TraceKind.BIND, 0)
        assert len(tr) == 0

    def test_keep_filter(self):
        tr = TraceRecorder(keep=[TraceKind.CRASH])
        tr.record(1.0, TraceKind.BIND, 0)
        tr.record(2.0, TraceKind.CRASH, 1)
        assert [e.kind for e in tr] == [TraceKind.CRASH]

    def test_subscribers_called(self):
        tr = TraceRecorder()
        seen = []
        tr.subscribers.append(seen.append)
        tr.record(1.0, TraceKind.BIND, 0)
        assert len(seen) == 1

    def test_detail_access(self):
        tr = TraceRecorder()
        tr.record(1.0, TraceKind.CALL, 0, service="s", call_id="0:1", method="go")
        e = tr.events[0]
        assert e.get("call_id") == "0:1"
        assert e.get("missing", "dflt") == "dflt"


class TestQueries:
    def _populate(self):
        tr = TraceRecorder()
        tr.record(1.0, TraceKind.BIND, 0, service="a")
        tr.record(2.0, TraceKind.BIND, 1, service="b")
        tr.record(3.0, TraceKind.CRASH, 1)
        tr.record(4.0, TraceKind.CRASH, 1)  # duplicate crash record
        return tr

    def test_of_kind(self):
        tr = self._populate()
        assert len(tr.of_kind(TraceKind.BIND)) == 2
        assert len(tr.of_kind(TraceKind.BIND, TraceKind.CRASH)) == 4

    def test_for_stack(self):
        tr = self._populate()
        assert len(tr.for_stack(1)) == 3

    def test_for_service(self):
        tr = self._populate()
        assert len(tr.for_service("a")) == 1

    def test_crashes_first_occurrence_wins(self):
        tr = self._populate()
        assert tr.crashes() == {1: 3.0}

    def test_crashed_before(self):
        tr = self._populate()
        assert tr.crashed_before(1, 3.0)
        assert not tr.crashed_before(1, 2.9)
        assert not tr.crashed_before(0, 10.0)

    def test_counts(self):
        tr = self._populate()
        assert tr.counts() == {"bind": 2, "crash": 2}

    def test_clear(self):
        tr = self._populate()
        tr.clear()
        assert len(tr) == 0
        # The per-kind index must clear too, not serve stale records.
        assert tr.of_kind(TraceKind.BIND) == []
        assert tr.crashes() == {}

    def test_of_kind_index_matches_scan(self):
        tr = self._populate()
        for kinds in ([TraceKind.BIND], [TraceKind.BIND, TraceKind.CRASH]):
            wanted = set(kinds)
            assert tr.of_kind(*kinds) == [e for e in tr if e.kind in wanted]

    def test_wants_reflects_keep_filter(self):
        assert TraceRecorder().wants(TraceKind.CALL)
        filtered = TraceRecorder(keep=[TraceKind.CRASH])
        assert filtered.wants(TraceKind.CRASH)
        assert not filtered.wants(TraceKind.CALL)


class TestSlottedRecords:
    def test_hot_fields_are_slots(self):
        tr = TraceRecorder()
        tr.record(1.0, TraceKind.CALL, 0, service="s", method="go", call_id="0:1")
        e = tr.events[0]
        assert (e.method, e.call_id, e.event) == ("go", "0:1", None)
        assert not hasattr(e, "__dict__")  # slotted: no per-record dict
        assert dict(e.detail) == {}  # hot record: shared empty mapping

    def test_get_covers_slots_and_detail(self):
        tr = TraceRecorder()
        tr.record(1.0, TraceKind.RECOVER, 2, epoch=3)
        tr.record(2.0, TraceKind.RESPONSE, 2, service="s", event="pong")
        recover, response = tr.events
        assert recover.get("epoch") == 3
        assert recover.get("method", "dflt") == "dflt"
        assert response.get("event") == "pong"

    def test_records_are_immutable(self):
        tr = TraceRecorder()
        tr.record(1.0, TraceKind.BIND, 0, service="s")
        with pytest.raises(AttributeError):
            tr.events[0].service = "other"

    def test_trace_event_alias(self):
        assert TraceEvent is TraceRecord


class TestNullTrace:
    def test_shared_and_disabled(self):
        assert NULL_TRACE.enabled is False
        NULL_TRACE.record(1.0, TraceKind.BIND, 0)
        assert len(NULL_TRACE) == 0

    def test_cannot_be_enabled(self):
        """The process-wide null sink must stay inert: enabling it would
        silently couple every trace-off stack in the process."""
        with pytest.raises(ValueError, match="always-off sink"):
            NULL_TRACE.enabled = True
        NULL_TRACE.enabled = False  # idempotent no-op stays allowed
        assert not NULL_TRACE.wants(TraceKind.CALL)
