"""Realtime chaos layer units: injector surface and transport faults.

Covers the :class:`RealtimeFaultInjector` contract on a live (loopback)
:class:`RealtimeBackend` — crash/recover with records, partitions both
symmetric and one-way, link impairments, latency spikes, scenario
fault-plan scheduling — plus the transport-level trust boundary: garbage
bytes arriving on a *real* bound UDP socket are counted and dropped,
never raised into the event loop.

Wall-clock delays are tens of milliseconds with generous margins, so the
file stays CI-fast.
"""

from __future__ import annotations

import socket

import pytest

from repro.net.message import NetMessage
from repro.runtime import RealtimeBackend, RealtimeFaultInjector
from repro.runtime.codec import encode_datagram
from repro.scenarios.spec import Crash, Heal, ImpairLink, LatencySpike, Partition, Recover

TICK = 0.02


@pytest.fixture
def backend():
    b = RealtimeBackend(n=3, seed=11)
    b.start()
    yield b
    b.stop()


def _sink(backend, machine_id):
    got = []
    backend.network.attach(machine_id, lambda m, at: got.append(m.payload))
    return got


def _send(backend, src, dst, payload):
    backend.network.send(
        NetMessage(src=src, dst=dst, payload=payload, size_bytes=32)
    )


# --------------------------------------------------------------------- #
# Satellite pin: garbage bytes on a live socket
# --------------------------------------------------------------------- #
def test_garbage_datagram_on_live_socket_is_counted_not_raised(backend):
    got = _sink(backend, 0)
    address = backend.network.addresses[0]
    probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        probe.sendto(b"", address)                      # empty
        probe.sendto(b"\x80\x04garbage", address)       # pickle-ish junk
        probe.sendto(b"RW" + b"\xff" * 20, address)     # right magic, junk rest
    finally:
        probe.close()
    backend.run(5 * TICK)
    stats = backend.network.stats()
    assert stats["malformed"] == 3
    assert got == []
    # The loop survived: a well-formed datagram still delivers.
    _send(backend, 1, 0, "still-alive")
    backend.run(5 * TICK)
    assert got == ["still-alive"]
    assert backend.network.stats()["malformed"] == 3


def test_valid_codec_datagram_from_foreign_socket_delivers(backend):
    # The wire format is the codec, not the socket: any peer that speaks
    # it is accepted (there is no authentication, only safe decoding).
    got = _sink(backend, 2)
    probe = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
    try:
        probe.sendto(
            encode_datagram(0, 2, ("external", 1), 16),
            backend.network.addresses[2],
        )
    finally:
        probe.close()
    backend.run(5 * TICK)
    assert got == [("external", 1)]


# --------------------------------------------------------------------- #
# Injector surface
# --------------------------------------------------------------------- #
def test_injector_crash_recover_records_and_node_state(backend):
    injector = RealtimeFaultInjector(backend)
    injector.crash(1)
    assert backend.nodes[1].crashed
    injector.crash(1)  # idempotent: no duplicate record
    injector.recover(1)
    assert not backend.nodes[1].crashed and backend.nodes[1].epoch == 1
    assert [r.kind for r in injector.records] == ["crash", "recover"]
    assert injector.counters() == {"crash": 1, "recover": 1}
    assert injector.crashed_ever() == {1: injector.records[0].time}


def test_injector_partition_blocks_and_heal_restores(backend):
    injector = RealtimeFaultInjector(backend)
    got0, got1 = _sink(backend, 0), _sink(backend, 1)
    injector.partition([0], [1, 2])
    _send(backend, 0, 1, "a-to-b")
    _send(backend, 1, 0, "b-to-a")
    backend.run(5 * TICK)
    assert got0 == [] and got1 == []
    injector.heal()
    _send(backend, 0, 1, "healed")
    backend.run(5 * TICK)
    assert got1 == ["healed"]
    assert backend.network.stats()["dropped_partition"] == 2


def test_injector_oneway_partition_blocks_one_direction(backend):
    injector = RealtimeFaultInjector(backend)
    got0, got1 = _sink(backend, 0), _sink(backend, 1)
    injector.partition_oneway([0], [1])
    _send(backend, 0, 1, "silenced")
    _send(backend, 1, 0, "heard")
    backend.run(5 * TICK)
    assert got1 == [] and got0 == ["heard"]
    injector.heal()


def test_injector_impair_link_full_loss_and_clear(backend):
    injector = RealtimeFaultInjector(backend)
    got1 = _sink(backend, 1)
    injector.impair_link(0, 1, loss_rate=1.0)
    _send(backend, 0, 1, "lost")
    backend.run(5 * TICK)
    assert got1 == []
    assert backend.network.stats()["dropped_loss"] == 1
    injector.clear_links()
    _send(backend, 0, 1, "through")
    backend.run(5 * TICK)
    assert got1 == ["through"]
    kinds = [r.kind for r in injector.records]
    assert kinds == ["impair-link", "clear-links"]


def test_injector_latency_spike_delays_then_reverts(backend):
    injector = RealtimeFaultInjector(backend)
    got1 = _sink(backend, 1)
    injector.latency_spike(10 * TICK, duration=20 * TICK)
    assert backend.network.extra_latency == pytest.approx(10 * TICK)
    _send(backend, 0, 1, "delayed")
    backend.run(3 * TICK)
    assert got1 == []  # still in the delay window
    backend.run(30 * TICK)
    assert got1 == ["delayed"]
    assert backend.network.extra_latency == 0.0  # spike reverted itself
    assert backend.network.stats()["delayed"] == 1


def test_scenario_fault_plan_schedules_against_realtime(backend):
    injector = RealtimeFaultInjector(backend)
    count = injector.schedule_plan([
        Crash(at=2 * TICK, machine=2),
        Recover(at=6 * TICK, machine=2),
        Partition(at=8 * TICK, groups=((0, 1), (2,))),
        ImpairLink(at=8 * TICK, src=0, dst=1, loss_rate=0.5, until=10 * TICK),
        Heal(at=10 * TICK),
        LatencySpike(at=10 * TICK, extra=TICK, duration=2 * TICK),
    ])
    assert count == 6
    backend.run(16 * TICK)
    counters = injector.counters()
    assert counters["crash"] == 1 and counters["recover"] == 1
    assert counters["partition"] == 1 and counters["heal"] == 1
    assert counters["impair-link"] == 1 and counters["clear-link"] == 1
    assert counters["latency-spike"] == 2  # begin + auto-revert
    assert not backend.nodes[2].crashed
    assert backend.network.extra_latency == 0.0
    # The record log is JSON-able for the health endpoint.
    dicts = injector.records_as_dicts()
    assert all(set(d) == {"time", "kind", "detail"} for d in dicts)
