"""Unit tests: the UDP kernel module."""


from repro.kernel import Module, System, WellKnown
from repro.net import UDP_HEADER_BYTES, SimNetwork, SwitchedLan, UdpModule
from repro.sim import ConstantLatency, us


class UdpApp(Module):
    REQUIRES = (WellKnown.UDP,)
    PROTOCOL = "udp-app"

    def __init__(self, stack):
        super().__init__(stack)
        self.got = []
        self.subscribe(
            WellKnown.UDP, "deliver", lambda s, p, z: self.got.append((s, p, z))
        )


def build(n=2, recv_cost=us(15.0)):
    sys_ = System(n=n, seed=0)
    net = SimNetwork(
        sys_.sim, sys_.machines, SwitchedLan(latency=ConstantLatency(0.001))
    )
    apps = []
    for st in sys_.stacks:
        st.add_module(UdpModule(st, net, recv_cost=recv_cost))
        a = UdpApp(st)
        st.add_module(a)
        apps.append(a)
    return sys_, net, apps


class TestUdpModule:
    def test_send_and_deliver(self):
        sys_, net, apps = build()
        apps[0].call(WellKnown.UDP, "send", 1, "hi", 100)
        sys_.run()
        assert apps[1].got == [(0, "hi", 100)]

    def test_header_bytes_added_on_wire(self):
        sys_, net, apps = build()
        apps[0].call(WellKnown.UDP, "send", 1, "hi", 100)
        sys_.run()
        assert net.stats()["bytes_sent"] == 100 + UDP_HEADER_BYTES

    def test_loopback_skips_the_wire(self):
        sys_, net, apps = build()
        apps[0].call(WellKnown.UDP, "send", 0, "self", 50)
        sys_.run()
        assert apps[0].got == [(0, "self", 50)]
        assert net.stats().get("sent", 0) == 0
        assert net.stats().get("loopback") == 1

    def test_receive_cost_charged_on_receiver_cpu(self):
        sys_, net, apps = build(recv_cost=us(500.0))
        apps[0].call(WellKnown.UDP, "send", 1, "x", 10)
        sys_.run()
        # receiver CPU consumed the recv cost (plus response dispatch)
        assert sys_.machines[1].cpu_busy_total >= 500e-6

    def test_detach_on_remove(self):
        sys_, net, apps = build()
        udp_name = next(
            name for name, m in sys_.stack(1).modules.items() if m.protocol == "udp"
        )
        sys_.stack(1).remove_module(udp_name)
        apps[0].call(WellKnown.UDP, "send", 1, "gone", 10)
        sys_.run()
        assert apps[1].got == []
        assert net.stats().get("dropped_unattached") == 1

    def test_unreliability_is_the_lans(self):
        sys_ = System(n=2, seed=1)
        net = SimNetwork(
            sys_.sim,
            sys_.machines,
            SwitchedLan(latency=ConstantLatency(0.001), loss_rate=0.5),
        )
        apps = []
        for st in sys_.stacks:
            st.add_module(UdpModule(st, net))
            a = UdpApp(st)
            st.add_module(a)
            apps.append(a)
        for i in range(100):
            apps[0].call(WellKnown.UDP, "send", 1, i, 10)
        sys_.run()
        assert 20 < len(apps[1].got) < 80  # lossy, as configured
