"""Unit tests: the machine CPU/queueing/crash model."""

import pytest

from repro.errors import SimulationError
from repro.sim import Machine


@pytest.fixture
def machine(sim):
    return Machine(sim, 0)


class TestCpuQueueing:
    def test_single_task_completes_after_cost(self, sim, machine):
        done = []
        machine.execute(0.010, done.append, "a")
        sim.run()
        assert done == ["a"]
        assert sim.now == pytest.approx(0.010)

    def test_tasks_serialise(self, sim, machine):
        completions = []
        machine.execute(0.010, lambda: completions.append(sim.now))
        machine.execute(0.010, lambda: completions.append(sim.now))
        machine.execute(0.010, lambda: completions.append(sim.now))
        sim.run()
        assert completions == pytest.approx([0.010, 0.020, 0.030])

    def test_queueing_after_idle_gap(self, sim, machine):
        completions = []
        machine.execute(0.010, lambda: completions.append(sim.now))
        sim.schedule(0.050, lambda: machine.execute(0.010, lambda: completions.append(sim.now)))
        sim.run()
        # Second task starts when submitted (CPU idle), not at busy_until.
        assert completions == pytest.approx([0.010, 0.060])

    def test_zero_cost_task(self, sim, machine):
        done = []
        machine.execute(0.0, done.append, 1)
        sim.run()
        assert done == [1] and sim.now == 0.0

    def test_negative_cost_rejected(self, machine):
        with pytest.raises(SimulationError):
            machine.execute(-0.001, lambda: None)

    def test_backlog_accounting(self, sim, machine):
        machine.execute(0.010, lambda: None)
        machine.execute(0.010, lambda: None)
        assert machine.cpu_backlog == pytest.approx(0.020)
        sim.run()
        assert machine.cpu_backlog == 0.0

    def test_busy_total_accumulates(self, sim, machine):
        machine.execute(0.010, lambda: None)
        machine.execute(0.005, lambda: None)
        sim.run()
        assert machine.cpu_busy_total == pytest.approx(0.015)
        assert machine.tasks_executed == 2


class TestTimers:
    def test_timer_fires(self, sim, machine):
        fired = []
        machine.set_timer(0.5, fired.append, "t")
        sim.run()
        assert fired == ["t"] and sim.now == 0.5

    def test_timer_does_not_occupy_cpu(self, sim, machine):
        order = []
        machine.set_timer(0.010, lambda: order.append(("timer", sim.now)))
        machine.execute(0.020, lambda: order.append(("task", sim.now)))
        sim.run()
        assert order == [("timer", 0.010), ("task", 0.020)]


class TestCrash:
    def test_crash_suppresses_queued_work(self, sim, machine):
        done = []
        machine.execute(0.010, done.append, "x")
        machine.crash()
        sim.run()
        assert done == []

    def test_crash_suppresses_timers(self, sim, machine):
        fired = []
        machine.set_timer(0.5, fired.append, "t")
        machine.crash_at(0.1)
        sim.run()
        assert fired == []

    def test_execute_after_crash_is_dropped(self, sim, machine):
        machine.crash()
        assert machine.execute(0.010, lambda: None) is None
        assert machine.set_timer(0.010, lambda: None) is None

    def test_crash_is_idempotent_and_records_time(self, sim, machine):
        sim.schedule(0.3, machine.crash)
        sim.run()
        t = machine.crashed_at
        machine.crash()
        assert machine.crashed_at == t == 0.3

    def test_crash_hooks_fire_once(self, sim, machine):
        calls = []
        machine.on_crash.append(calls.append)
        machine.crash()
        machine.crash()
        assert calls == [0.0]

    def test_crash_at_schedules_control_priority(self, sim, machine):
        # A crash and an ordinary event at the same instant: crash first.
        order = []
        machine.crash_at(1.0)
        sim.schedule_at(1.0, lambda: order.append(machine.crashed))
        sim.run()
        assert order == [True]


class TestRecovery:
    def test_recover_brings_machine_back(self, sim, machine):
        machine.crash_at(1.0)
        machine.recover_at(2.0)
        done = []
        sim.schedule_at(2.5, lambda: machine.execute(0.01, done.append, "x"))
        sim.run()
        assert not machine.crashed
        assert machine.ever_crashed and machine.crash_count == 1
        assert done == ["x"]

    def test_precrash_work_stays_dead_after_recovery(self, sim, machine):
        """Tasks and timers from the old incarnation never fire."""
        fired = []
        machine.execute(1.5, fired.append, "task")   # would complete at 1.5
        machine.set_timer(1.5, fired.append, "timer")
        machine.crash_at(1.0)
        machine.recover_at(1.2)                       # recovery before t=1.5
        sim.run()
        assert fired == []

    def test_recovered_cpu_starts_idle(self, sim, machine):
        machine.execute(5.0, lambda: None)            # long task queued
        machine.crash_at(1.0)
        machine.recover_at(2.0)
        sim.run(until=2.0)
        assert machine.cpu_backlog == 0.0

    def test_recover_is_noop_when_up(self, sim, machine):
        machine.recover()
        assert not machine.crashed and machine.crash_count == 0

    def test_on_recover_hooks_fire(self, sim, machine):
        times = []
        machine.on_recover.append(times.append)
        machine.crash_at(1.0)
        machine.recover_at(2.0)
        sim.run()
        assert times == [2.0]

    def test_second_incarnation_can_crash_again(self, sim, machine):
        machine.crash_at(1.0)
        machine.recover_at(2.0)
        machine.crash_at(3.0)
        sim.run()
        assert machine.crashed and machine.crash_count == 2
        assert machine.crashed_at == 3.0


class TestSetTimerFast:
    def test_fires_like_set_timer(self, sim, machine):
        fired = []
        machine.set_timer_fast(0.5, fired.append, "fast")
        machine.set_timer(0.5, fired.append, "slow")
        sim.run()
        assert fired == ["fast", "slow"]  # scheduling order preserved
        assert sim.now == pytest.approx(0.5)

    def test_dies_with_the_epoch(self, sim, machine):
        fired = []
        machine.set_timer_fast(1.0, fired.append, "old")
        machine.crash()
        machine.recover()
        machine.set_timer_fast(1.0, fired.append, "new")
        sim.run()
        assert fired == ["new"]

    def test_noop_on_crashed_machine(self, sim, machine):
        fired = []
        machine.crash()
        machine.set_timer_fast(0.1, fired.append, "never")
        sim.run()
        assert fired == []

    def test_negative_delay_rejected(self, sim, machine):
        with pytest.raises(SimulationError):
            machine.set_timer_fast(-0.1, lambda: None)
