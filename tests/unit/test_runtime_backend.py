"""Backend conformance: the sim and realtime twins obey one contract.

Every test runs twice — once on :class:`SimBackend`, once on
:class:`RealtimeBackend` (real asyncio UDP sockets, wall-clock timers) —
asserting the behavioural clauses module code relies on: timer ordering,
cancellation, crash suppression with epoch guards across recovery,
deferred execution, and datagram delivery semantics around crashes.
Realtime delays are tens of milliseconds, so the whole file stays
CI-fast while leaving generous jitter margins.
"""

from __future__ import annotations

import pytest

from repro.net.message import NetMessage
from repro.runtime import (
    Backend,
    NodeBackend,
    RealtimeBackend,
    RealtimeFaultInjector,
    Scheduler,
    SimBackend,
    Transport,
)
from repro.sim.faults import FaultInjector

# Base timer quantum: long enough that wall-clock jitter cannot reorder
# distinct multiples, short enough to keep the suite quick.
TICK = 0.02


@pytest.fixture(params=["sim", "realtime"])
def backend(request):
    """A started two-node backend of each flavour (stopped on teardown)."""
    if request.param == "sim":
        b = SimBackend(n=2, seed=7, trace_enabled=False)
    else:
        b = RealtimeBackend(n=2, seed=7)
    b.start()
    yield b
    b.stop()


def run_ticks(backend, ticks: float) -> None:
    """Advance backend time far enough for *ticks* quanta to elapse."""
    backend.run(ticks * TICK + TICK)


def test_implements_the_api(backend):
    isinstance_checks = [
        isinstance(backend, Backend),
        isinstance(backend.sim, Scheduler),
        isinstance(backend.nodes[0], NodeBackend),
        isinstance(backend.network, Transport),
    ]
    assert all(isinstance_checks)
    assert backend.n == 2
    assert backend.machine(0) is backend.nodes[0]


def test_timer_ordering(backend):
    fired = []
    node = backend.nodes[0]
    node.set_timer(3 * TICK, fired.append, "c")
    node.set_timer(1 * TICK, fired.append, "a")
    node.set_timer(2 * TICK, fired.append, "b")
    run_ticks(backend, 4)
    assert fired == ["a", "b", "c"]


def test_equal_delay_timers_fire_in_arming_order(backend):
    fired = []
    node = backend.nodes[0]
    for tag in ("first", "second", "third"):
        node.set_timer_fast(TICK, fired.append, tag)
    run_ticks(backend, 2)
    assert fired == ["first", "second", "third"]


def test_cancel_prevents_fire_and_is_idempotent_after_fire(backend):
    fired = []
    node = backend.nodes[0]
    cancelled = node.set_timer(TICK, fired.append, "cancelled")
    kept = node.set_timer(TICK, fired.append, "kept")
    node.cancel(cancelled)
    run_ticks(backend, 2)
    assert fired == ["kept"]
    # Cancelling a handle whose timer already fired must be a no-op.
    node.cancel(kept)
    run_ticks(backend, 1)
    assert fired == ["kept"]


def test_crash_suppresses_timers_across_recovery(backend):
    fired = []
    node = backend.nodes[0]
    node.set_timer(4 * TICK, fired.append, "old-epoch")
    run_ticks(backend, 1)  # advances ~2 ticks: still before the deadline
    node.crash()
    assert node.crashed and node.ever_crashed and node.crash_count == 1
    # While down: arming is refused (None handle, nothing scheduled).
    assert node.set_timer(TICK, fired.append, "while-down") is None
    node.recover()
    assert not node.crashed
    # The pre-crash timer belongs to the dead epoch: it must never fire,
    # even though the node is back up when its deadline passes.
    run_ticks(backend, 3)
    assert fired == []
    # The new incarnation's timers work.
    node.set_timer(TICK, fired.append, "new-epoch")
    run_ticks(backend, 2)
    assert fired == ["new-epoch"]


def test_crash_and_recover_hooks_fire(backend):
    events = []
    node = backend.nodes[1]
    node.on_crash.append(lambda t: events.append(("crash", t >= 0)))
    node.on_recover.append(lambda t: events.append(("recover", t >= 0)))
    node.crash()
    node.crash()  # idempotent: second call must not re-fire hooks
    node.recover()
    assert events == [("crash", True), ("recover", True)]
    assert node.epoch == 1


def test_execute_defers(backend):
    ran = []
    node = backend.nodes[0]
    node.execute(0.0, ran.append, "deferred")
    assert ran == []  # must not run synchronously inside execute()
    run_ticks(backend, 1)
    assert ran == ["deferred"]


def test_execute_dropped_on_crashed_node(backend):
    ran = []
    node = backend.nodes[0]
    node.crash()
    node.execute(0.0, ran.append, "never")
    run_ticks(backend, 1)
    assert ran == []


def _attach_sink(backend, machine_id):
    got = []
    backend.network.attach(
        machine_id, lambda message, at: got.append(message.payload)
    )
    return got


def test_datagram_delivery(backend):
    got = _attach_sink(backend, 1)
    backend.network.send(NetMessage(src=0, dst=1, payload=("hello", 42), size_bytes=64))
    run_ticks(backend, 2)
    assert got == [("hello", 42)]


def test_datagram_dropped_when_sender_crashed(backend):
    got = _attach_sink(backend, 1)
    backend.nodes[0].crash()
    backend.network.send(NetMessage(src=0, dst=1, payload="x", size_bytes=64))
    run_ticks(backend, 2)
    assert got == []


def test_datagram_dropped_when_receiver_crashed(backend):
    got = _attach_sink(backend, 1)
    backend.nodes[1].crash()
    backend.network.send(NetMessage(src=0, dst=1, payload="x", size_bytes=64))
    run_ticks(backend, 2)
    assert got == []
    # After recovery, fresh datagrams flow again (crash-stop, not drop-forever).
    backend.nodes[1].recover()
    backend.network.send(NetMessage(src=0, dst=1, payload="y", size_bytes=64))
    run_ticks(backend, 2)
    assert got == ["y"]


def test_send_local_loopback(backend):
    got = _attach_sink(backend, 0)
    backend.network.send_local(NetMessage(src=0, dst=0, payload="self", size_bytes=16))
    run_ticks(backend, 1)
    assert got == ["self"]


def test_scheduler_clock_and_counters(backend):
    sim = backend.sim
    t0 = sim.now
    e0 = sim.events_processed
    sim.schedule_fast(TICK, lambda: None)
    run_ticks(backend, 1)
    assert sim.now >= t0 + TICK
    assert sim.events_processed > e0
    assert sim.peek_time() is None or sim.peek_time() >= sim.now


# --------------------------------------------------------------------- #
# Fault-surface contract: one FaultInjector behaviour on both twins
# --------------------------------------------------------------------- #
def make_injector(backend):
    """The right injector flavour for *backend* (same contract either way)."""
    if isinstance(backend, RealtimeBackend):
        return RealtimeFaultInjector(backend)
    return FaultInjector(backend.sim, backend.nodes, network=backend.network)


def test_injector_crash_suppresses_timers_and_recover_rearms(backend):
    injector = make_injector(backend)
    fired = []
    node = backend.nodes[0]
    node.set_timer(3 * TICK, fired.append, "old-epoch")
    injector.crash(0)
    run_ticks(backend, 4)
    assert fired == []  # pre-crash timer died with its epoch
    injector.recover(0)
    node.set_timer(TICK, fired.append, "new-epoch")
    run_ticks(backend, 2)
    assert fired == ["new-epoch"]  # the recovered incarnation re-arms
    assert [record.kind for record in injector.records] == ["crash", "recover"]


def test_injector_partition_blocks_both_directions(backend):
    injector = make_injector(backend)
    got0, got1 = _attach_sink(backend, 0), _attach_sink(backend, 1)
    injector.partition([0], [1])
    backend.network.send(NetMessage(src=0, dst=1, payload="a", size_bytes=32))
    backend.network.send(NetMessage(src=1, dst=0, payload="b", size_bytes=32))
    run_ticks(backend, 3)
    assert got0 == [] and got1 == []
    injector.heal()
    backend.network.send(NetMessage(src=0, dst=1, payload="healed", size_bytes=32))
    run_ticks(backend, 3)
    assert got1 == ["healed"]  # heal restores delivery


def test_injector_oneway_partition_blocks_exactly_one_direction(backend):
    injector = make_injector(backend)
    got0, got1 = _attach_sink(backend, 0), _attach_sink(backend, 1)
    injector.partition_oneway([0], [1])
    backend.network.send(NetMessage(src=0, dst=1, payload="blocked", size_bytes=32))
    backend.network.send(NetMessage(src=1, dst=0, payload="flows", size_bytes=32))
    run_ticks(backend, 3)
    assert got1 == [] and got0 == ["flows"]
    assert backend.network.is_partitioned(0, 1)
    assert not backend.network.is_partitioned(1, 0)
    injector.heal()


def test_injector_full_loss_link_drops_until_cleared(backend):
    injector = make_injector(backend)
    got1 = _attach_sink(backend, 1)
    injector.impair_link(0, 1, loss_rate=1.0)
    backend.network.send(NetMessage(src=0, dst=1, payload="lost", size_bytes=32))
    run_ticks(backend, 3)
    assert got1 == []
    assert backend.network.stats()["dropped_loss"] == 1
    injector.clear_links()
    backend.network.send(NetMessage(src=0, dst=1, payload="kept", size_bytes=32))
    run_ticks(backend, 3)
    assert got1 == ["kept"]
