"""Unit tests: the consensus kernel module (channeling, dedup, re-respond)."""

import pytest

from repro.consensus import CtConsensusModule
from repro.errors import PropertyViolation
from repro.fd import OracleFd
from repro.kernel import Module, System, WellKnown
from repro.net import Rp2pModule, SimNetwork, SwitchedLan, UdpModule
from repro.rbcast import RbcastModule
from repro.sim import ConstantLatency


class App(Module):
    REQUIRES = (WellKnown.CONSENSUS,)
    PROTOCOL = "app"

    def __init__(self, stack):
        super().__init__(stack)
        self.decides = []
        self.subscribe(
            WellKnown.CONSENSUS, "decide", lambda iid, v, s: self.decides.append((iid, v))
        )


def build(n=3, seed=0, channel="0"):
    sys_ = System(n=n, seed=seed)
    net = SimNetwork(
        sys_.sim, sys_.machines, SwitchedLan(latency=ConstantLatency(0.0002))
    )
    group = list(range(n))
    apps, cts = [], []
    for st in sys_.stacks:
        st.add_module(UdpModule(st, net))
        st.add_module(Rp2pModule(st))
        st.add_module(OracleFd(st, group))
        st.add_module(RbcastModule(st, group))
        ct = CtConsensusModule(st, group, channel=channel)
        st.add_module(ct)
        cts.append(ct)
        a = App(st)
        st.add_module(a)
        apps.append(a)
    return sys_, apps, cts


class TestChanneling:
    def test_different_channels_do_not_interfere(self):
        """Two consensus incarnations on distinct channels run the same
        instance ids independently (the consensus-replacement setting)."""
        sys_, apps, cts = build(channel="a")
        # Add a second consensus incarnation on channel "b", unbound.
        group = [0, 1, 2]
        cts_b = []
        for st in sys_.stacks:
            ct_b = CtConsensusModule(st, group, channel="b")
            st.add_module(ct_b, bind=False)
            cts_b.append(ct_b)
        # Propose instance 0 on channel a (via the bound module).
        for i, a in enumerate(apps):
            a.call(WellKnown.CONSENSUS, "propose", 0, f"a{i}", 32)
        # Drive channel b's module directly with a different value set.
        for i, ct_b in enumerate(cts_b):
            ct_b.call_handler(WellKnown.CONSENSUS, "propose")(0, f"b{i}", 32)
        sys_.run(until=3.0)
        for ct, ct_b in zip(cts, cts_b):
            assert ct.decided_value(0).startswith("a")
            assert ct_b.decided_value(0).startswith("b")

    def test_member_validation(self):
        sys_ = System(n=2, seed=0)
        with pytest.raises(ValueError):
            CtConsensusModule(sys_.stack(0), group=[1])


class TestDecisionHandling:
    def test_propose_after_decide_rereponds(self):
        sys_, apps, cts = build()
        for i, a in enumerate(apps):
            a.call(WellKnown.CONSENSUS, "propose", 0, f"v{i}", 32)
        sys_.run(until=2.0)
        first = list(apps[0].decides)
        # A late proposal for the decided instance re-emits the decision
        # (catch-up path for modules installed by a replacement).
        apps[0].call(WellKnown.CONSENSUS, "propose", 0, "late", 32)
        sys_.run(until=3.0)
        assert len(apps[0].decides) == len(first) + 1
        assert apps[0].decides[-1] == apps[0].decides[0]

    def test_conflicting_decides_raise(self):
        """The built-in agreement cross-check: a second decide frame with
        a different value is a safety bug and must not be masked."""
        sys_, apps, cts = build()
        ct0 = cts[0]
        ct0._on_rbcast(0, ("ct.dec", "0", 7, "value-A", 8), 8)
        with pytest.raises(PropertyViolation, match="agreement"):
            ct0._on_rbcast(1, ("ct.dec", "0", 7, "value-B", 8), 8)

    def test_duplicate_decides_ignored(self):
        sys_, apps, cts = build()
        ct0 = cts[0]
        ct0._on_rbcast(0, ("ct.dec", "0", 7, "same", 8), 8)
        ct0._on_rbcast(1, ("ct.dec", "0", 7, "same", 8), 8)
        assert ct0.counters.get("decisions") == 1

    def test_open_instances_gauge(self):
        sys_, apps, cts = build()
        apps[0].call(WellKnown.CONSENSUS, "propose", 0, "v", 32)
        sys_.run(until=0.001)
        # One proposer is not a majority: the instance stays open.
        assert cts[0].open_instances == 1
        for a in apps[1:]:
            a.call(WellKnown.CONSENSUS, "propose", 0, f"w{a.stack_id}", 32)
        sys_.run(until=3.0)
        # With a quorum of proposals it decides and is garbage-collected.
        assert cts[0].open_instances == 0
