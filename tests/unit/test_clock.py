"""Unit tests: simulated-time conventions."""


import pytest

from repro.sim.clock import (
    TIME_EPSILON,
    format_time,
    ms,
    time_eq,
    time_le,
    to_ms,
    to_us,
    us,
)


class TestConversions:
    def test_ms_roundtrip(self):
        assert to_ms(ms(12.5)) == pytest.approx(12.5)

    def test_us_roundtrip(self):
        assert to_us(us(37.0)) == pytest.approx(37.0)

    def test_ms_is_seconds(self):
        assert ms(1000.0) == pytest.approx(1.0)

    def test_us_is_seconds(self):
        assert us(1_000_000.0) == pytest.approx(1.0)

    def test_zero(self):
        assert ms(0.0) == 0.0
        assert us(0.0) == 0.0


class TestFormatTime:
    def test_seconds_range(self):
        assert format_time(12.5) == "12.500s"

    def test_millis_range(self):
        assert format_time(0.0341) == "34.100ms"

    def test_micros_range(self):
        assert format_time(0.000045) == "45.000us"

    def test_non_finite(self):
        assert format_time(float("inf")) == "inf"
        assert format_time(float("nan")) == "nan"


class TestComparisons:
    def test_time_eq_within_epsilon(self):
        assert time_eq(1.0, 1.0 + TIME_EPSILON / 2)

    def test_time_eq_beyond_epsilon(self):
        assert not time_eq(1.0, 1.0 + 1e-6)

    def test_time_le_strict(self):
        assert time_le(1.0, 2.0)
        assert not time_le(2.0, 1.0)

    def test_time_le_tolerates_noise(self):
        assert time_le(1.0 + TIME_EPSILON / 2, 1.0)
