"""Unit tests for the fuzz generator and the spec serde it relies on."""

from __future__ import annotations

import pytest

from repro.errors import ScenarioError
from repro.experiments.common import PROTOCOL_CT
from repro.fuzz.generator import FuzzConfig, generate_spec, generate_specs
from repro.scenarios.serde import (
    spec_from_dict,
    spec_from_json,
    spec_to_dict,
    spec_to_json,
)
from repro.scenarios.spec import (
    Churn,
    Crash,
    Heal,
    ImpairLink,
    LatencySpike,
    Partition,
    PartitionOneWay,
    RandomCrashes,
    Recover,
    ScenarioSpec,
)
from repro.scenarios.switchplan import (
    SwitchAfterDeliveries,
    SwitchAfterSwitch,
    SwitchAt,
    SwitchIfStalled,
    SwitchOnFault,
)


class TestGenerator:
    def test_pure_in_seed_and_index(self):
        config = FuzzConfig(seed=7, budget=10)
        for index in range(10):
            assert generate_spec(config, index) == generate_spec(config, index)

    def test_independent_streams_per_index(self):
        # Index i does not depend on having generated 0..i-1.
        config = FuzzConfig(seed=3, budget=20)
        assert generate_specs(config)[13] == generate_spec(config, 13)

    def test_different_seeds_differ(self):
        a = generate_spec(FuzzConfig(seed=0), 0)
        b = generate_spec(FuzzConfig(seed=1), 0)
        assert a != b

    def test_specs_are_well_formed_and_ct_only(self):
        for seed in (0, 1, 2):
            for spec in generate_specs(FuzzConfig(seed=seed, budget=25)):
                assert 3 <= spec.n <= 5
                assert spec.switches  # always a switch chain
                assert all(s.protocol == PROTOCOL_CT for s in spec.switches)
                assert spec.initial_protocol == PROTOCOL_CT
                # Corruption is only ever generated tolerated: checksum on.
                assert spec.checksum
                # Every referenced machine exists.
                for action in spec.faults:
                    for machine in action.faulty_machines():
                        assert 0 <= machine < spec.n

    def test_schedule_family_exercises_the_axes(self):
        # Over a healthy budget the generator hits partitions (both
        # kinds), crashes, impairments, corruption, stall triggers and
        # the pipelined chain on multiple phases.
        specs = [
            s
            for seed in range(4)
            for s in generate_specs(FuzzConfig(seed=seed, budget=25))
        ]
        kinds = {type(a) for s in specs for a in s.faults}
        assert {Partition, PartitionOneWay, Crash, Heal} <= kinds
        assert ImpairLink in kinds and LatencySpike in kinds
        step_kinds = {type(st) for s in specs for st in s.switches}
        assert SwitchAfterSwitch in step_kinds and SwitchAt in step_kinds
        assert SwitchIfStalled in step_kinds
        phases = {
            st.phase
            for s in specs
            for st in s.switches
            if isinstance(st, SwitchAfterSwitch)
        }
        assert phases == {"started", "completed", "closed"}
        assert any(s.uses_corruption() for s in specs)
        assert any(isinstance(st, SwitchIfStalled) for s in specs for st in s.switches)

    def test_guard_knob_propagates(self):
        guarded = generate_spec(FuzzConfig(seed=0), 0)
        literal = generate_spec(FuzzConfig(seed=0, guard_change_sn=False), 0)
        assert guarded.guard_change_sn and not literal.guard_change_sn
        # The schedule itself is identical: only the guard differs.
        assert guarded.faults == literal.faults
        assert guarded.switches == literal.switches

    def test_bad_index_rejected(self):
        with pytest.raises(ScenarioError):
            generate_spec(FuzzConfig(), -1)


class TestSerde:
    def _omnibus(self) -> ScenarioSpec:
        """One spec touching every fault action and switch step kind."""
        return ScenarioSpec(
            name="omnibus",
            n=6,
            guard_change_sn=False,
            corrupt_rate=0.01,
            checksum=False,
            faults=(
                Crash(at=1.0, machine=2),
                Recover(at=2.0, machine=2),
                Partition(at=2.5, groups=((0, 1), (2, 3, 4, 5))),
                PartitionOneWay(at=2.6, src=(0,), dst=(1, 2)),
                Heal(at=3.0),
                ImpairLink(at=1.5, src=0, dst=1, loss_rate=0.1, corrupt_rate=0.2,
                           until=2.0),
                LatencySpike(at=1.8, extra=0.004, duration=0.5),
                Churn(start=3.5, machines=(5,), period=1.0, downtime=0.3),
                RandomCrashes(start=4.0, window=1.0, count=1, candidates=(3, 4),
                              recover_after=0.5),
            ),
            switches=(
                SwitchAt(protocol="abcast-ct", at=2.0, from_stack=1),
                SwitchAfterDeliveries(protocol="abcast-seq", count=10, on_stack=2),
                SwitchOnFault(protocol="abcast-ct", fault_index=1, delay=0.1),
                SwitchAfterSwitch(protocol="abcast-ct", version=2, phase="started"),
                SwitchIfStalled(protocol="abcast-ct", version=1, timeout=0.7),
            ),
            expected_faulty=(5,),
        )

    def test_roundtrip_exact_over_all_kinds(self):
        spec = self._omnibus()
        assert spec_from_dict(spec_to_dict(spec)) == spec
        assert spec_from_json(spec_to_json(spec)) == spec

    def test_roundtrip_exact_over_generated_budget(self):
        for spec in generate_specs(FuzzConfig(seed=5, budget=25)):
            assert spec_from_json(spec_to_json(spec)) == spec

    def test_json_is_deterministic(self):
        spec = self._omnibus()
        assert spec_to_json(spec) == spec_to_json(spec_from_json(spec_to_json(spec)))

    def test_unknown_kind_rejected(self):
        data = spec_to_dict(self._omnibus())
        data["faults"][0]["kind"] = "Meteor"
        with pytest.raises(ScenarioError):
            spec_from_dict(data)

    def test_unknown_field_rejected(self):
        data = spec_to_dict(self._omnibus())
        data["faults"][0]["blast_radius"] = 3
        with pytest.raises(ScenarioError):
            spec_from_dict(data)
        data = spec_to_dict(self._omnibus())
        data["warp_factor"] = 9
        with pytest.raises(ScenarioError):
            spec_from_dict(data)

    def test_malformed_json_rejected(self):
        with pytest.raises(ScenarioError):
            spec_from_json("{nope")
        with pytest.raises(ScenarioError):
            spec_from_json("[1, 2]")
