"""Unit tests: the wire-corruption link model and its containment checker.

Two regimes, both exercised in both directions:

* ``checksum=True`` (default) — corruption is **tolerated**: the
  receiver NIC detects the mangled frame and drops it; reliable layers
  retransmit; the containment checker stays quiet.
* ``checksum=False`` — mangled frames are **delivered** wrapped in
  :class:`CorruptedPayload`; the network counts the breach, the UDP
  doorway defensively discards the garbage, and the containment checker
  flags the run.
"""

import pytest

from repro.dpu.abcast_checker import check_corruption_containment
from repro.kernel import Module, System, WellKnown
from repro.net import (
    CorruptedPayload,
    NetMessage,
    SimNetwork,
    SwitchedLan,
    UdpModule,
)
from repro.sim import ConstantLatency, Machine


def make_net(sim, n=3, **lan_kwargs):
    lan_kwargs.setdefault("latency", ConstantLatency(0.001))
    machines = [Machine(sim, i) for i in range(n)]
    return machines, SimNetwork(sim, machines, SwitchedLan(**lan_kwargs))


def blast(net, sim, count=400, src=0, dst=1):
    got = []
    net.attach(dst, lambda m, t: got.append(m.payload))
    for i in range(count):
        net.send(NetMessage(src, dst, f"m{i}", 100))
    sim.run()
    return got


class TestNetworkCorruption:
    def test_checksum_on_detects_and_drops(self, sim):
        _machines, net = make_net(sim)
        net.corrupt_rate = 0.25
        got = blast(net, sim)
        stats = net.stats()
        # Seeded draws: deterministic counts, all corrupted frames dropped.
        assert stats["corrupted"] > 0
        assert stats["corrupted_dropped"] == stats["corrupted"]
        assert "corrupted_delivered" not in stats  # zero => key omitted
        assert len(got) == 400 - stats["corrupted"]
        assert not any(isinstance(p, CorruptedPayload) for p in got)

    def test_checksum_off_delivers_wrapped_garbage(self, sim):
        _machines, net = make_net(sim)
        net.corrupt_rate = 0.25
        net.checksum = False
        got = blast(net, sim)
        stats = net.stats()
        assert stats["corrupted"] > 0
        assert stats["corrupted_delivered"] == stats["corrupted"]
        assert "corrupted_dropped" not in stats
        assert len(got) == 400  # nothing dropped: the damage arrives
        wrapped = [p for p in got if isinstance(p, CorruptedPayload)]
        assert len(wrapped) == stats["corrupted"]
        # The original payload survives inside the wrapper (diagnostics).
        assert all(str(w.original).startswith("m") for w in wrapped)

    def test_seeded_counts_are_deterministic(self):
        from repro.sim import Simulator

        def run():
            sim = Simulator(seed=42)
            _machines, net = make_net(sim)
            net.corrupt_rate = 0.1
            blast(net, sim)
            return net.stats()

        assert run() == run()

    def test_per_link_rate_composes_with_floor(self, sim):
        _machines, net = make_net(sim)
        net.corrupt_rate = 0.05
        net.impair_link(0, 1, corrupt_rate=0.2)
        got_impaired = blast(net, sim)
        corrupted_01 = net.stats()["corrupted"]
        assert corrupted_01 > 0
        # The 0→2 link only has the floor: far fewer corruptions.
        got_floor = blast(net, sim, dst=2)
        assert net.stats()["corrupted"] - corrupted_01 < corrupted_01
        assert len(got_floor) > len(got_impaired)

    def test_zero_rate_never_draws(self, sim):
        _machines, net = make_net(sim)
        got = blast(net, sim)
        stats = net.stats()
        assert "corrupted" not in stats
        assert len(got) == 400

    def test_corrupt_rate_validated(self, sim):
        from repro.errors import NetworkError

        _machines, net = make_net(sim)
        with pytest.raises(NetworkError):
            net.impair_link(0, 1, corrupt_rate=1.5)


class UdpApp(Module):
    REQUIRES = (WellKnown.UDP,)
    PROTOCOL = "udp-app"

    def __init__(self, stack):
        super().__init__(stack)
        self.got = []
        self.subscribe(
            WellKnown.UDP, "deliver", lambda s, p, z: self.got.append((s, p, z))
        )


class TestUdpDoorway:
    def test_garbage_discarded_at_the_module_boundary(self):
        # Checksum off: the network delivers wrapped garbage; the UDP
        # module must drop it (garbage fails frame parsing) rather than
        # hand corrupted bytes to a typed protocol handler.
        sys_ = System(n=2, seed=0)
        net = SimNetwork(
            sys_.sim, sys_.machines, SwitchedLan(latency=ConstantLatency(0.001))
        )
        net.corrupt_rate = 0.5
        net.checksum = False
        udps = []
        apps = []
        for st in sys_.stacks:
            udp = UdpModule(st, net)
            st.add_module(udp)
            udps.append(udp)
            app = UdpApp(st)
            st.add_module(app)
            apps.append(app)
        for i in range(100):
            apps[0].call(WellKnown.UDP, "send", 1, f"p{i}", 50)
        sys_.run()
        assert udps[1].garbage_dropped > 0
        assert udps[1].garbage_dropped == net.stats()["corrupted_delivered"]
        assert len(apps[1].got) == 100 - udps[1].garbage_dropped
        assert all(isinstance(p, str) for _s, p, _z in apps[1].got)


class TestContainmentChecker:
    def test_quiet_when_nothing_delivered(self):
        assert check_corruption_containment({}) == []
        assert (
            check_corruption_containment(
                {"corrupted": 5, "corrupted_dropped": 5}, checksum=True
            )
            == []
        )

    def test_flags_breach_with_checksum_on(self):
        violations = check_corruption_containment(
            {"corrupted": 5, "corrupted_delivered": 2}, checksum=True
        )
        assert len(violations) == 1
        assert "slipped past" in violations[0]

    def test_flags_breach_with_checksum_off(self):
        violations = check_corruption_containment(
            {"corrupted": 5, "corrupted_delivered": 5}, checksum=False
        )
        assert len(violations) == 1
        assert "no checksum" in violations[0]
