# R4 fixture: timer-arming Module subclasses with and without on_restart.

from ..kernel.module import Module


class LeakyTimer(Module):  # planted R4: arms a timer, no on_restart
    def on_start(self):
        self.set_timer(1.0, self._tick)

    def _tick(self):
        self.set_timer_fast(1.0, self._tick)


# repro: ignore[R4] -- fixture: justified class-level suppression is honoured
class WaivedTimer(Module):
    def on_start(self):
        self.set_timer(1.0, self._tick)

    def _tick(self):
        pass


class RearmedBase(Module):
    def on_start(self):
        self.set_timer(1.0, self._tick)

    def on_restart(self):
        self.set_timer(1.0, self._tick)

    def _tick(self):
        pass


class InheritsRearm(RearmedBase):  # clean: ancestor defines on_restart
    pass


class NoTimers(Module):  # clean: purely message-driven
    def on_start(self):
        pass
