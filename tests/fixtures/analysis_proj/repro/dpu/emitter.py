# R5 fixture (emission side): referencing an undeclared TraceKind member.

from ..kernel.events import TraceKind


def emit(trace, now, stack_id):
    trace.record(now, TraceKind.BIND, stack_id)  # clean: declared member
    trace.record(now, TraceKind.REBOOTED, stack_id)  # planted R5: undeclared
