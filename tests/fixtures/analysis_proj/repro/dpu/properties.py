# R5 fixture (checker side): a property checker consuming a kind the
# structural filter drops.

from ..kernel.events import TraceKind


def check_calls(trace):
    crashes = trace.of_kind(TraceKind.CRASH)  # clean: structural kind
    calls = trace.of_kind(TraceKind.CALL)  # planted R5: non-structural in a checker
    return len(calls), len(crashes)
