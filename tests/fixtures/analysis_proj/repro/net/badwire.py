# R3 fixture: a pickle import and a wire registration whose field model
# does not bottom out in codec tags.

import pickle  # planted R3: pickle-family import


class OpaqueBlob:
    pass


class BadFrame:
    src: int
    blob: OpaqueBlob  # not a codec tag, not a registered wire class

    def __init__(self, src, blob):
        self.src = src
        self.blob = blob


class GoodFrame:
    src: int
    names: "list[str]"

    def __init__(self, src, names):
        self.src = src
        self.names = names


def register(register_wire_type):
    register_wire_type(  # planted R3: BadFrame.blob is unsupported
        "fixture.BadFrame",
        BadFrame,
        lambda m: (m.src, m.blob),
        lambda f: BadFrame(f[0], f[1]),
    )
    register_wire_type(  # clean: int + list[str] bottom out in tags
        "fixture.GoodFrame",
        GoodFrame,
        lambda m: (m.src, m.names),
        lambda f: GoodFrame(f[0], f[1]),
    )


def load(data):
    return pickle.loads(data)
