# R2 fixture: the four determinism hazards in a non-protocol package
# (so R1 stays quiet and the findings are attributable to R2 alone).

import random
import time


class Broadcaster:
    def __init__(self, peers):
        self.peers = set(peers)
        self.rng = random.Random()  # planted R2: unseeded RNG
        self.started = time.time()  # planted R2: wall-clock read
        self.table = {}

    def remember(self, obj):
        self.table[id(obj)] = obj  # planted R2: id() as a key

    def flush(self):
        for peer in self.peers:  # planted R2: set iteration feeding sends
            self.call("udp", "send", peer)

    def flush_sorted(self):
        for peer in sorted(self.peers):  # clean: sorted view
            self.call("udp", "send", peer)

    def call(self, service, method, *args):
        pass

    def seeded_ok(self, seed):
        return random.Random(seed)  # clean: explicit seed
