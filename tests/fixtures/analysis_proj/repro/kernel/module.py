# Fixture twin of the kernel Module base: just enough surface for the
# R4 resolver (timer methods + default lifecycle hooks).


class Module:
    def set_timer(self, delay, fn, *args):
        pass

    def set_timer_fast(self, delay, fn, *args):
        pass

    def on_restart(self):
        pass
