# Fixture twin of repro.kernel.events: a TraceKind enum plus the
# structural subset, in exactly the shape the project index parses.

import enum


class TraceKind(enum.Enum):
    BIND = "bind"
    CALL = "call"
    RESPONSE = "response"
    CRASH = "crash"


STRUCTURAL_TRACE_KINDS = frozenset(TraceKind) - frozenset(
    (TraceKind.CALL, TraceKind.RESPONSE)
)
