# R6 fixture: a blocking call inside an async def on the runtime side.

import asyncio
import time


async def pump(queue):
    while True:
        time.sleep(0.1)  # planted R6: blocks the shared event loop
        await queue.get()


async def pump_ok(queue):
    await asyncio.sleep(0.1)  # clean: asyncio equivalent
    return await queue.get()


def sync_helper():
    time.sleep(0.1)  # clean: not inside async def
