# R1 fixture: a protocol-package module that bypasses the runtime seam.

import time  # planted R1: stdlib time in a protocol package

from ..sim.engine import Simulator  # planted R1: sim engine internals

import asyncio  # repro: ignore[R1] -- fixture: proves a justified suppression silences R1


def wall_elapsed(start):
    # planted R2 on an R1-suppressed *rule* mismatch: the ignore below
    # names R1 only, so the wall-clock R2 finding must still fire.
    return time.time() - start  # repro: ignore[R1] -- fixture: wrong-rule suppression must not silence R2


def bare_marker():
    pass  # repro: ignore[R2]
