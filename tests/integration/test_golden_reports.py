"""Golden-report pins: the runtime seam changed no simulated byte.

The checked-in goldens under ``tests/golden/`` were generated from the
tree *before* the Backend seam was introduced.  These tests regenerate
the smoke campaign in-process and require byte identity — across
``jobs`` values and trace modes — so any future change that perturbs a
simulated execution (however subtly) fails loudly here rather than
silently shifting every experiment.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.scenarios import get_campaign
from repro.scenarios.engine import compare_reports, run_campaign

GOLDEN_DIR = pathlib.Path(__file__).parent.parent / "golden"
SEEDS = [0, 1, 2]


@pytest.mark.slow
def test_smoke_campaign_structural_matches_golden_across_jobs():
    golden = (GOLDEN_DIR / "smoke_seeds3_structural.json").read_text()
    result = run_campaign(
        get_campaign("smoke"), seeds=SEEDS, jobs=2, trace="structural"
    )
    current = result.to_json() + "\n"
    if current != golden:
        drift = compare_reports(json.loads(golden), json.loads(current))
        pytest.fail(
            "structural smoke report drifted from the pre-seam golden:\n"
            + "\n".join(drift[:20])
        )


@pytest.mark.slow
def test_smoke_campaign_trace_off_matches_golden():
    golden = (GOLDEN_DIR / "smoke_seeds3_off.json").read_text()
    result = run_campaign(get_campaign("smoke"), seeds=SEEDS, jobs=1, trace="off")
    current = result.to_json() + "\n"
    if current != golden:
        drift = compare_reports(json.loads(golden), json.loads(current))
        pytest.fail(
            "trace-off smoke report drifted from the pre-seam golden:\n"
            + "\n".join(drift[:20])
        )
