"""Property tests: the warm-pool executor's determinism and failure contract.

Three contracts are pinned here:

* **byte-identity** — ``run_campaign`` / ``run_fuzz`` reports are
  byte-identical for every ``jobs`` × ``chunk_size`` × trace-mode
  combination (the merge is by cell index; each cell is a pure function
  of its arguments);
* **failure naming** — a cell that raises inside a worker fails the
  campaign with a :class:`~repro.errors.ScenarioError` naming the
  scenario and seed, never hangs the pool, and leaves the pool usable;
* **worker death** — a killed worker is replaced transparently when idle
  and surfaces as a named error when it dies mid-chunk.
"""

import json
import os
import signal

import pytest

from repro.errors import ScenarioError
from repro.experiments import PROTOCOL_SEQ
from repro.parallel import WarmPool, default_chunk_size, get_pool
from repro.scenarios import Campaign, Crash, ScenarioSpec, SwitchAt, run_campaign
from repro.scenarios.engine import result_from_dict, run_scenario
from repro.fuzz import FuzzConfig
from repro.fuzz.campaign import run_fuzz

SPEC_SWITCH = ScenarioSpec(
    name="pool-switch",
    n=3,
    duration=1.0,
    load_msgs_per_sec=40.0,
    switches=(SwitchAt(protocol=PROTOCOL_SEQ, at=0.6),),
    quiescence_extra=4.0,
)
SPEC_CRASH = ScenarioSpec(
    name="pool-crash",
    n=3,
    duration=1.0,
    load_msgs_per_sec=40.0,
    faults=(Crash(at=0.7, machine=2),),
    quiescence_extra=4.0,
)
CAMPAIGN = Campaign(name="pool", scenarios=(SPEC_SWITCH, SPEC_CRASH))


class TestByteIdentity:
    @pytest.mark.parametrize("trace", ["structural", "off"])
    def test_identity_across_jobs_and_chunk_sizes(self, trace):
        baseline = run_campaign(CAMPAIGN, seeds=(0, 1), jobs=1, trace=trace)
        for jobs in (2, 3):
            for chunk_size in (None, 1, 2):
                report = run_campaign(
                    CAMPAIGN, seeds=(0, 1), jobs=jobs, trace=trace,
                    chunk_size=chunk_size,
                )
                assert report.to_json() == baseline.to_json(), (
                    f"report drifted at jobs={jobs} chunk_size={chunk_size} "
                    f"trace={trace}"
                )

    def test_fuzz_identity_across_jobs_and_chunk_sizes(self):
        config = FuzzConfig(budget=4)
        baseline = run_fuzz(config, jobs=1, shrink=False)
        for jobs, chunk_size in ((2, None), (2, 1), (2, 3)):
            report = run_fuzz(config, jobs=jobs, shrink=False,
                              chunk_size=chunk_size)
            assert report.to_json() == baseline.to_json(), (
                f"fuzz report drifted at jobs={jobs} chunk_size={chunk_size}"
            )

    def test_result_from_dict_round_trips(self):
        result = run_scenario(SPEC_SWITCH, seed=0)
        fragment = json.dumps(result.to_dict(), sort_keys=True,
                              separators=(",", ":"))
        rebuilt = result_from_dict(json.loads(fragment))
        assert rebuilt == result

    def test_chunk_size_below_one_rejected(self):
        with pytest.raises(ScenarioError, match="chunk_size"):
            run_campaign(CAMPAIGN, seeds=(0,), jobs=2, chunk_size=0)

    def test_default_chunk_size_bounds(self):
        # Floored at 1, capped at 8, ~4 rounds per worker in between.
        assert default_chunk_size(1, 4) == 1
        assert default_chunk_size(1000, 2) == 8
        assert default_chunk_size(64, 4) == 4


class TestFailureContract:
    def test_poisoned_cell_names_spec_and_seed(self):
        # run_scenario validates the trace mode inside the worker, so a
        # bogus mode is a convenient always-raising cell.
        with pytest.raises(ScenarioError) as excinfo:
            run_campaign(CAMPAIGN, seeds=(7,), jobs=2, trace="bogus")
        message = str(excinfo.value)
        assert "pool-switch" in message
        assert "seed 7" in message

    def test_pool_usable_after_poisoned_campaign(self):
        with pytest.raises(ScenarioError):
            run_campaign(CAMPAIGN, seeds=(0,), jobs=2, trace="bogus")
        good = run_campaign(CAMPAIGN, seeds=(0,), jobs=2)
        assert good.to_json() == run_campaign(CAMPAIGN, seeds=(0,)).to_json()

    def test_idle_worker_killed_is_replaced_transparently(self):
        pool = get_pool(2)
        pool.warm()
        victim = pool._workers[0].process
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=10)
        assert not victim.is_alive()
        # The next campaign must notice the corpse at dispatch, replace
        # it, and still produce the byte-identical report.
        report = run_campaign(CAMPAIGN, seeds=(0,), jobs=2)
        assert report.to_json() == run_campaign(CAMPAIGN, seeds=(0,)).to_json()
        assert all(w.process.is_alive() for w in pool._workers)


class TestStandalonePool:
    """WarmPool used directly (not through the process-wide singleton)."""

    def test_run_cells_merges_in_cell_order(self):
        pool = WarmPool(2)
        try:
            cells = [(SPEC_SWITCH, seed, "structural") for seed in (0, 1, 2)]
            fragments = pool.run_cells(cells, chunk_size=1)
            seeds = [json.loads(f)["seed"] for f in fragments]
            assert seeds == [0, 1, 2]
        finally:
            pool.shutdown()

    def test_jobs_below_one_rejected(self):
        with pytest.raises(ScenarioError, match="jobs"):
            WarmPool(0)

    def test_shutdown_is_idempotent(self):
        pool = WarmPool(1)
        pool.shutdown()
        pool.shutdown()
        assert pool.size == 0
