"""Campaign reports must not depend on the kernel trace depth.

The campaign engine defaults to ``trace="structural"`` — recording only
the kinds the property checkers consume — so full-stack runs stop paying
one record allocation per dispatched call.  That is only sound if the
JSON report is **byte-identical** to a full-trace run, at every ``jobs``
fan-out.  These tests pin exactly that, plus the "off" depth for clean
runs.
"""

import pytest

from repro.errors import ScenarioError
from repro.kernel import STRUCTURAL_TRACE_KINDS, TraceKind
from repro.scenarios import Campaign, get_scenario, run_campaign, run_scenario


@pytest.fixture(scope="module")
def campaign():
    # One small, fast scenario with a switch (n=3): enough to exercise
    # call blocking, trace-backed checkers, and the report surface.
    return Campaign(name="trace-mode-probe",
                    scenarios=(get_scenario("latency-spike-switch"),))


class TestTraceModeIdentity:
    def test_structural_equals_full_report(self, campaign):
        full = run_campaign(campaign, seeds=(0,), trace="full")
        structural = run_campaign(campaign, seeds=(0,), trace="structural")
        assert structural.to_json() == full.to_json()

    def test_off_equals_full_report_on_clean_run(self, campaign):
        # With tracing fully off the trace-backed checkers are vacuous;
        # on a violation-free run the report bytes must still agree.
        full = run_campaign(campaign, seeds=(0,), trace="full")
        off = run_campaign(campaign, seeds=(0,), trace="off")
        assert full.ok
        assert off.to_json() == full.to_json()

    def test_structural_identical_across_jobs(self, campaign):
        serial = run_campaign(campaign, seeds=(0, 1), trace="structural", jobs=1)
        parallel = run_campaign(campaign, seeds=(0, 1), trace="structural", jobs=2)
        assert serial.to_json() == parallel.to_json()

    def test_unknown_trace_mode_rejected(self):
        with pytest.raises(ScenarioError, match="trace mode"):
            run_scenario(get_scenario("latency-spike-switch"), trace="verbose")


class TestStructuralKinds:
    def test_structural_kinds_cover_checker_inputs(self):
        # The checkers consume exactly these kinds; dropping one would
        # silently blunt a checker in every default campaign run.
        needed = {
            TraceKind.MODULE_ADDED,
            TraceKind.MODULE_REMOVED,
            TraceKind.BIND,
            TraceKind.UNBIND,
            TraceKind.CALL_BLOCKED,
            TraceKind.CALL_UNBLOCKED,
            TraceKind.CRASH,
            TraceKind.RECOVER,
        }
        assert needed <= STRUCTURAL_TRACE_KINDS

    def test_structural_kinds_drop_the_firehose(self):
        for kind in (TraceKind.CALL, TraceKind.CALL_DISPATCHED,
                     TraceKind.RESPONSE, TraceKind.RESPONSE_BUFFERED):
            assert kind not in STRUCTURAL_TRACE_KINDS
