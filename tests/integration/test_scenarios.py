"""Integration tests: the scenario campaign engine end to end.

The CI ``scenario-smoke`` job runs the real ``smoke`` campaign through
the CLI; these tests keep the engine honest from inside the test suite
with smaller, faster scenarios, and pin the report contract (structure,
exemption accounting, exit codes).
"""

import json

import pytest

from repro.errors import ScenarioError
from repro.experiments import PROTOCOL_CT, PROTOCOL_SEQ
from repro.scenarios import (
    Campaign,
    Crash,
    Heal,
    Partition,
    Recover,
    ScenarioSpec,
    SwitchAt,
    get_campaign,
    get_scenario,
    run_campaign,
    run_scenario,
)
from repro.scenarios.__main__ import main as cli_main

# Small, fast specs used across the tests.
TINY = ScenarioSpec(
    name="tiny-switch",
    n=3,
    duration=2.0,
    load_msgs_per_sec=60.0,
    switches=(SwitchAt(protocol=PROTOCOL_CT, at=1.0),),
    quiescence_extra=6.0,
)

TINY_CRASH = ScenarioSpec(
    name="tiny-crash",
    n=5,
    duration=2.5,
    load_msgs_per_sec=60.0,
    faults=(Crash(at=1.0, machine=4),),
    switches=(SwitchAt(protocol=PROTOCOL_SEQ, at=1.5),),
    quiescence_extra=8.0,
)


class TestRunScenario:
    def test_clean_switch_has_no_violations(self):
        result = run_scenario(TINY, seed=0)
        assert result.ok
        assert result.violations_total == 0
        assert result.sent_total > 0
        assert result.ordered_common == result.sent_total
        assert result.final_protocols == {0: PROTOCOL_CT, 1: PROTOCOL_CT, 2: PROTOCOL_CT}
        assert len(result.switch_windows) == 1
        assert result.switch_windows[0]["stacks_completed"] == 3

    def test_crash_scenario_accounts_faulty_stack(self):
        result = run_scenario(TINY_CRASH, seed=0)
        assert result.ok
        assert result.crashed == {4: 1.0}
        assert result.correct_stacks == [0, 1, 2, 3]
        assert [f["kind"] for f in result.faults] == ["crash"]
        # Survivors all finished the switch to the sequencer.
        assert all(
            result.final_protocols[s] == PROTOCOL_SEQ for s in result.correct_stacks
        )

    def test_crash_recover_counts_machine_as_faulty(self):
        spec = ScenarioSpec(
            name="tiny-recover",
            n=3,
            duration=2.5,
            load_msgs_per_sec=60.0,
            faults=(Crash(at=1.0, machine=2), Recover(at=1.6, machine=2)),
            quiescence_extra=6.0,
        )
        result = run_scenario(spec, seed=0)
        assert result.ok
        assert result.crashed == {2: 1.0}
        assert result.correct_stacks == [0, 1]
        assert [f["kind"] for f in result.faults] == ["crash", "recover"]

    def test_partition_heal_recovers_all_stacks(self):
        spec = ScenarioSpec(
            name="tiny-partition",
            n=3,
            duration=2.5,
            load_msgs_per_sec=60.0,
            faults=(Partition(at=1.0, groups=((0, 1), (2,))), Heal(at=1.8)),
            quiescence_extra=10.0,
        )
        result = run_scenario(spec, seed=0)
        assert result.ok
        assert result.crashed == {}
        # After heal + drain everyone converged.
        assert result.ordered_common == result.sent_total

    def test_result_round_trips_through_json(self):
        result = run_scenario(TINY, seed=1)
        blob = json.dumps(result.to_dict(), sort_keys=True)
        assert json.loads(blob)["name"] == "tiny-switch"


class TestCampaigns:
    def test_campaign_runs_scenarios_times_seeds(self):
        campaign = Campaign(name="t", scenarios=(TINY,))
        result = run_campaign(campaign, seeds=(0, 1))
        assert [r.seed for r in result.results] == [0, 1]
        assert result.ok
        assert result.violations_total == 0

    def test_campaign_rejects_duplicates_and_empties(self):
        with pytest.raises(ScenarioError):
            Campaign(name="dup", scenarios=(TINY, TINY))
        with pytest.raises(ScenarioError):
            Campaign(name="empty", scenarios=())

    def test_library_lookup_errors_are_helpful(self):
        with pytest.raises(ScenarioError, match="known:"):
            get_scenario("no-such-scenario")
        with pytest.raises(ScenarioError, match="known:"):
            get_campaign("no-such-campaign")

    def test_registered_smoke_campaign_exists(self):
        smoke = get_campaign("smoke")
        assert len(smoke.scenarios) >= 3


class TestCli:
    def test_list_exits_zero(self, capsys):
        assert cli_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "churn-storm" in out and "smoke" in out

    def test_scenario_run_writes_report(self, tmp_path, capsys):
        out_file = tmp_path / "report.json"
        code = cli_main(
            ["--scenario", "latency-spike-switch", "--seed", "0", "--out", str(out_file)]
        )
        assert code == 0
        blob = json.loads(out_file.read_text())
        assert blob["ok"] is True
        assert blob["campaign"] == "adhoc:latency-spike-switch"
        assert len(blob["runs"]) == 1
