"""Integration tests: the crash-recovery restart protocol end to end.

A crashed machine used to come back as a passive zombie (its timers died
with the old incarnation).  These tests pin the full restart path: the
kernel re-arms every module, the heartbeat FD announces the new
incarnation epoch, the GM re-join handshake transfers state through the
(replaceable) abcast total order, and the recovered stack delivers
post-recovery messages again — with the property checkers' exemptions
narrowed back accordingly.
"""

from repro.experiments import PROTOCOL_SEQ
from repro.kernel import WellKnown
from repro.scenarios import (
    Campaign,
    Crash,
    Recover,
    ScenarioSpec,
    SwitchAt,
    get_campaign,
    get_scenario,
    run_campaign,
    run_scenario,
)
from repro.scenarios.engine import _collect_rejoined

RECOVERY_SCENARIOS = (
    "recover-during-switch",
    "churn-with-rejoin",
    "recovery-storm-after-heal",
)


class TestRestartProtocol:
    def _run(self, spec, seed=0):
        from repro.experiments.common import build_group_comm_system
        from repro.scenarios.engine import _config_for
        from repro.scenarios.switchplan import SwitchPlan
        from repro.sim.faults import FaultInjector

        gcs = build_group_comm_system(_config_for(spec, seed))
        injector = FaultInjector(
            gcs.system.sim, gcs.system.machines, network=gcs.network, name=spec.name
        )
        for action in spec.faults:
            action.schedule(injector)
        plan = SwitchPlan(spec.switches)
        plan.arm(gcs, injector)
        gcs.system.run(until=spec.duration)
        gcs.run_to_quiescence(
            extra=spec.quiescence_extra,
            exempt=set(injector.crashed_ever()),
            rejoined=lambda: _collect_rejoined(gcs),
        )
        return gcs

    def test_recovered_stack_rejoins_and_delivers_post_recovery_traffic(self):
        spec = get_scenario("recover-during-switch")
        gcs = self._run(spec)
        system = gcs.system

        # The machine is back up in a new incarnation.
        machine = system.machine(3)
        assert not machine.crashed and machine.ever_crashed
        assert machine.epoch == 1

        # FD re-arm: no stack suspects the recovered machine any more,
        # and its peers observed the new incarnation epoch.
        for s in (0, 1, 2, 4):
            fd = system.stack(s).bound_module(WellKnown.FD)
            assert 3 not in fd.suspects()
            assert fd.restarts_observed >= 1

        # GM re-join: the handshake completed via a state transfer from
        # the lowest-ranked live member, and every member logged it.
        gm3 = system.stack(3).bound_module(WellKnown.GM)
        assert gm3.rejoined_epoch == 1
        assert gm3.rejoined_at is not None
        donor_gm = system.stack(0).bound_module(WellKnown.GM)
        assert donor_gm.counters.get("state_snapshots_sent") >= 1
        assert any(rank == 3 and epoch == 1 for rank, epoch, _t in donor_gm.rejoin_log)
        # The snapshot carried the donor's abcast sequence position
        # (the replacement layer's version counter: one switch happened).
        assert gm3.last_snapshot_abcast_sn == 1

        # Views converged everywhere (same id, same members).
        views = {
            s: system.stack(s).bound_module(WellKnown.GM)._current_view()
            for s in range(5)
        }
        assert len(set(views.values())) == 1
        assert views[0][1] == frozenset(range(5))

        # The recovered stack finished the switch it slept through and
        # delivers post-recovery traffic: full convergence on the order.
        status = system.stack(3).query(WellKnown.R_ABCAST, "status")
        assert status["seq_number"] == 1
        post = {
            key
            for key, (_s, t) in gcs.log.sends.items()
            if t > gm3.rejoined_at
        }
        assert post and post <= gcs.log.delivered_set(3)

    def test_rejoin_repeats_across_churn_incarnations(self):
        spec = get_scenario("churn-with-rejoin")
        gcs = self._run(spec)
        machine = gcs.system.machine(3)
        gm3 = gcs.system.stack(3).bound_module(WellKnown.GM)
        assert machine.epoch == 2  # two outages, two incarnations
        assert gm3.rejoined_epoch == 2  # the *current* incarnation rejoined
        epochs = sorted(e for r, e, _t in gm3.rejoin_log if r == 3)
        assert epochs == [1, 2]  # both incarnations completed the handshake

    def test_recovery_scenarios_are_green_and_report_rejoins(self):
        for name in RECOVERY_SCENARIOS:
            result = run_scenario(get_scenario(name), seed=0)
            assert result.ok, (name, result.violations)
            assert result.rejoined, name
            # The rejoined stacks delivered the full common order here.
            for s in result.rejoined:
                assert result.delivered_per_stack[s] > 0
            assert result.ordered_common == result.sent_total, name


class TestRecoveryLivenessNarrowing:
    def test_zombie_without_gm_stays_exempt(self):
        """Without the GM handshake there is no re-join marker: the
        ever-crashed exemption stays wide (conservative, as before)."""
        spec = ScenarioSpec(
            name="tiny-recover-no-gm",
            n=3,
            duration=2.5,
            load_msgs_per_sec=60.0,
            faults=(Crash(at=1.0, machine=2), Recover(at=1.6, machine=2)),
            quiescence_extra=8.0,
        )
        result = run_scenario(spec, seed=0)
        assert result.ok
        assert result.rejoined == {}
        assert result.crashed == {2: 1.0}

    def test_rejoined_stack_is_held_to_post_rejoin_obligations(self):
        spec = ScenarioSpec(
            name="tiny-rejoin",
            n=3,
            duration=3.0,
            load_msgs_per_sec=60.0,
            with_gm=True,
            faults=(Crash(at=1.0, machine=2), Recover(at=1.5, machine=2)),
            quiescence_extra=10.0,
        )
        result = run_scenario(spec, seed=0)
        assert result.ok
        assert list(result.rejoined) == [2]

    def test_checker_flags_missing_post_rejoin_delivery(self):
        """The narrowed exemption has teeth: a rejoined stack that skips
        a post-rejoin message is flagged; without a re-join marker the
        wide exemption keeps it silent."""
        from repro.dpu import DeliveryLog, check_recovery_liveness

        log = DeliveryLog()
        log.note_send("m1", 0, 1.0)   # pre-rejoin: stays exempt
        log.note_send("m2", 0, 3.0)   # post-rejoin, delivered by 2
        log.note_send("m3", 0, 4.0)   # post-rejoin, NOT delivered by 2
        log.note_delivery("m2", 2, 3.1)
        crashed = {2: 0.5}
        violations = check_recovery_liveness(log, {2: 2.0}, crashed)
        assert len(violations) == 1 and "'m3'" in violations[0]
        assert check_recovery_liveness(log, {}, crashed) == []


class TestRecoveryDeterminism:
    def test_same_seed_byte_identical_reports(self):
        campaign = get_campaign("recovery")
        a = run_campaign(campaign, seeds=(0, 1))
        b = run_campaign(campaign, seeds=(0, 1))
        assert a.to_json() == b.to_json()
        assert a.ok

    def test_parallel_jobs_byte_identical(self):
        campaign = Campaign(
            name="recovery-par",
            scenarios=(
                get_scenario("recover-during-switch"),
                get_scenario("churn-with-rejoin"),
            ),
        )
        serial = run_campaign(campaign, seeds=(0, 1), jobs=1)
        parallel = run_campaign(campaign, seeds=(0, 1), jobs=2)
        assert serial.to_json() == parallel.to_json()
        assert serial.ok

    def test_distinct_seeds_differ(self):
        spec = get_scenario("recover-during-switch")
        r0 = run_scenario(spec, seed=0)
        r1 = run_scenario(spec, seed=1)
        assert r0.ok and r1.ok
        assert r0.to_dict() != r1.to_dict()


class TestRecoverDuringSwitchEdge:
    def test_crash_between_unbind_and_bind_resumes_switch_after_recovery(self):
        """The hardest schedule: the machine crashes *inside* its own
        switch window (service unbound, creation timer in flight).  The
        restart path re-arms the creation timer, the switch completes in
        the new incarnation, and the stack converges."""
        spec = ScenarioSpec(
            name="crash-inside-own-switch",
            n=5,
            duration=5.0,
            load_msgs_per_sec=80.0,
            with_gm=True,
            switches=(SwitchAt(protocol=PROTOCOL_SEQ, at=2.0, from_stack=0),),
            # The switch's change message Adelivers shortly after 2.0 and
            # module creation takes 5 ms; crash stack 4 inside that window
            # (cushion for dissemination/ordering latency), recover later.
            faults=(Crash(at=2.052, machine=4), Recover(at=2.6, machine=4)),
            quiescence_extra=14.0,
        )
        result = run_scenario(spec, seed=0)
        assert result.ok, result.violations
        assert result.final_protocols[4] == PROTOCOL_SEQ
        assert result.ordered_common == result.sent_total

    def test_churn_storm_library_scenario_now_rejoins(self):
        """The pre-existing churn-storm scenario gains real rejoins."""
        result = run_scenario(get_scenario("churn-storm"), seed=0)
        assert result.ok
        assert set(result.rejoined) == {3, 4}
