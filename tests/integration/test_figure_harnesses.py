"""Integration tests: the experiment harnesses themselves (reduced scale).

The benchmarks regenerate the figures at full scale; these tests keep the
harness code itself correct and fast to check (n small, short runs).
"""

import pytest

from repro.experiments import (
    GroupCommConfig,
    run_comparison,
    run_concurrent_change_ablation,
    run_creation_cost_ablation,
    run_figure5,
    run_one_config,
)
from repro.sim import ms


SMALL = GroupCommConfig(n=3, seed=71, load_msgs_per_sec=40.0)


class TestFigure5Harness:
    def test_produces_series_window_and_phases(self):
        res = run_figure5(SMALL, duration=6.0)
        assert len(res.points) > 100
        assert res.replacement_window is not None
        assert res.replacement_window.duration > 0
        assert res.pre_mean is not None and res.pre_mean > 0
        assert res.during_mean is not None
        assert res.post_mean is not None

    def test_post_returns_to_pre_level(self):
        """The paper's 'quickly stabilizes' claim at harness level."""
        res = run_figure5(SMALL, duration=6.0)
        assert res.post_mean == pytest.approx(res.pre_mean, rel=0.5)

    def test_render_contains_measurements(self):
        res = run_figure5(SMALL, duration=6.0)
        text = res.render()
        assert "Figure 5" in text
        assert "replacement" in text

    def test_series_in_ms(self):
        res = run_figure5(SMALL, duration=6.0)
        (t0, ms0) = res.series_ms()[0]
        (t0b, s0) = res.points[0]
        assert ms0 == pytest.approx(s0 * 1e3)


class TestFigure6Harness:
    @pytest.mark.parametrize(
        "configuration",
        ["normal_without_layer", "normal_with_layer", "during_replacement"],
    )
    def test_each_configuration_measures(self, configuration):
        point = run_one_config(
            n=3, configuration=configuration, load=40.0, duration=4.0, seed=72
        )
        assert point.mean_latency is not None
        assert point.mean_latency > 0

    def test_unknown_configuration_rejected(self):
        with pytest.raises(ValueError):
            run_one_config(n=3, configuration="bogus", load=40.0)


class TestComparisonHarness:
    def test_rows_for_all_solutions(self):
        res = run_comparison(n=3, load=40.0, duration=6.0, seed=73)
        assert {r.solution for r in res.rows} == {
            "algorithm1",
            "maestro",
            "graceful",
        }
        ours = res.row("algorithm1")
        maestro = res.row("maestro")
        # The paper's headline comparison claim, measured:
        assert ours.app_blocked_total == 0.0
        assert maestro.app_blocked_total > 0.0
        assert "app blocked" in res.render()


class TestAblationHarnesses:
    def test_concurrent_change_variants(self):
        outcomes = run_concurrent_change_ablation(
            n=3, seed=74, duration=5.0, variants=("guarded+drop", "guarded+reissue")
        )
        assert all(o.correct for o in outcomes)
        drop, reissue = outcomes
        assert drop.variant == "guarded+drop"

    def test_creation_cost_monotone_blocking(self):
        points = run_creation_cost_ablation(
            costs=(0.0, ms(50.0)), n=3, load=40.0, duration=5.0, seed=75
        )
        assert points[0].blocked_time_total <= points[1].blocked_time_total
        assert points[1].blocked_time_total > 0
