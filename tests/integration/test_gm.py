"""Integration tests: group membership over (replaceable) atomic broadcast."""


from repro.experiments import GroupCommConfig, build_group_comm_system
from repro.kernel import WellKnown


def build(n=4, seed=61, duration=6.0, **kwargs):
    cfg = GroupCommConfig(
        n=n,
        seed=seed,
        load_msgs_per_sec=40.0,
        load_stop=duration,
        with_gm=True,
        **kwargs,
    )
    return build_group_comm_system(cfg)


def gm_of(gcs, stack_id):
    return next(
        m for m in gcs.system.stack(stack_id).modules.values() if m.protocol == "gm"
    )


class TestViews:
    def test_initial_view_everywhere(self):
        gcs = build()
        gcs.run(until=1.0)
        for s in range(4):
            vid, members = gcs.system.stack(s).query(WellKnown.GM, "current_view")
            assert vid == 0 and members == frozenset({0, 1, 2, 3})

    def test_explicit_expel_installs_same_view_everywhere(self):
        gcs = build()
        gm_of(gcs, 1).call(WellKnown.GM, "propose_expel", 3)
        gcs.run(until=3.0)
        histories = [gm_of(gcs, s).view_history for s in range(3)]
        assert histories[0] == histories[1] == histories[2]
        assert histories[0][-1] == (1, frozenset({0, 1, 2}))

    def test_join_after_expel(self):
        gcs = build(seed=62)
        gm_of(gcs, 0).call(WellKnown.GM, "propose_expel", 3)
        gcs.system.sim.schedule(
            2.0, gm_of(gcs, 0).call, WellKnown.GM, "propose_join", 3
        )
        gcs.run(until=5.0)
        for s in range(3):
            assert gm_of(gcs, s).members == frozenset({0, 1, 2, 3})
            assert gm_of(gcs, s).view_id == 2

    def test_crash_triggers_automatic_expulsion(self):
        gcs = build(seed=63, duration=8.0)
        gcs.system.crash_at(2, 3.0)
        gcs.run(until=8.0)
        for s in (0, 1, 3):
            gm = gm_of(gcs, s)
            assert gm.members == frozenset({0, 1, 3})
        # exactly one view change, despite n detectors suspecting:
        assert gm_of(gcs, 0).view_id == 1

    def test_duplicate_proposals_do_not_double_expel(self):
        gcs = build(seed=64)
        gm_of(gcs, 0).call(WellKnown.GM, "propose_expel", 3)
        gm_of(gcs, 1).call(WellKnown.GM, "propose_expel", 3)
        gcs.run(until=3.0)
        assert gm_of(gcs, 0).view_id == 1
        assert gm_of(gcs, 0).members == frozenset({0, 1, 2})
