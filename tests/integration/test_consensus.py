"""Integration tests: Chandra–Toueg consensus over the full substrate."""


from repro.consensus import CtConsensusModule
from repro.fd import HeartbeatFd, OracleFd
from repro.kernel import Module, System, WellKnown
from repro.net import Rp2pModule, SimNetwork, SwitchedLan, UdpModule
from repro.rbcast import RbcastModule
from repro.sim import ConstantLatency, ms


class ConsensusApp(Module):
    REQUIRES = (WellKnown.CONSENSUS,)
    PROTOCOL = "consensus-app"

    def __init__(self, stack):
        super().__init__(stack)
        self.decisions = {}
        self.subscribe(
            WellKnown.CONSENSUS,
            "decide",
            lambda iid, v, s: self.decisions.setdefault(iid, v),
        )


def build(n=5, seed=0, fd="heartbeat", oracle_scripts=None, loss=0.0):
    sys_ = System(n=n, seed=seed)
    net = SimNetwork(
        sys_.sim, sys_.machines,
        SwitchedLan(latency=ConstantLatency(0.0002), loss_rate=loss),
    )
    group = list(range(n))
    apps, cts = [], []
    for st in sys_.stacks:
        st.add_module(UdpModule(st, net))
        st.add_module(Rp2pModule(st))
        if fd == "heartbeat":
            st.add_module(HeartbeatFd(st, group, period=ms(20), timeout=ms(80)))
        else:
            script = (oracle_scripts or {}).get(st.stack_id, [])
            st.add_module(OracleFd(st, group, script=script))
        st.add_module(RbcastModule(st, group))
        ct = CtConsensusModule(st, group)
        st.add_module(ct)
        cts.append(ct)
        a = ConsensusApp(st)
        st.add_module(a)
        apps.append(a)
    return sys_, apps, cts


def propose_all(sys_, apps, iid, prefix="v"):
    for i, a in enumerate(apps):
        a.call(WellKnown.CONSENSUS, "propose", iid, f"{prefix}{i}", 100)


class TestFailureFree:
    def test_agreement_validity_termination(self):
        sys_, apps, cts = build()
        propose_all(sys_, apps, 0)
        sys_.run(until=2.0)
        decisions = {a.decisions.get(0) for a in apps}
        assert len(decisions) == 1
        decided = decisions.pop()
        assert decided in {f"v{i}" for i in range(5)}  # validity

    def test_many_concurrent_instances(self):
        sys_, apps, cts = build()
        for iid in range(10):
            propose_all(sys_, apps, iid, prefix=f"i{iid}-")
        sys_.run(until=5.0)
        for iid in range(10):
            vals = {a.decisions.get(iid) for a in apps}
            assert len(vals) == 1 and None not in vals

    def test_one_decision_per_instance(self):
        sys_, apps, cts = build()
        propose_all(sys_, apps, 0)
        sys_.run(until=2.0)
        assert all(ct.counters.get("decisions") == 1 for ct in cts)

    def test_late_proposer_still_decides(self):
        sys_, apps, cts = build()
        for i, a in enumerate(apps[:-1]):
            a.call(WellKnown.CONSENSUS, "propose", 0, f"v{i}", 100)
        # the last process proposes a full second later
        sys_.sim.schedule(1.0, apps[-1].call, WellKnown.CONSENSUS, "propose", 0, "late", 100)
        sys_.run(until=3.0)
        vals = {a.decisions.get(0) for a in apps}
        assert len(vals) == 1 and None not in vals


class TestWithCrashes:
    def test_coordinator_crash_before_propose(self):
        sys_, apps, cts = build(seed=1)
        sys_.machines[0].crash()  # round-0 coordinator dead from the start
        for a in apps[1:]:
            a.call(WellKnown.CONSENSUS, "propose", 0, f"v{a.stack_id}", 100)
        sys_.run(until=5.0)
        vals = {a.decisions.get(0) for a in apps[1:]}
        assert len(vals) == 1 and None not in vals

    def test_coordinator_crash_mid_round(self):
        sys_, apps, cts = build(seed=2)
        propose_all(sys_, apps, 0)
        sys_.machines[0].crash_at(0.0015)  # likely mid-phase
        sys_.run(until=5.0)
        vals = {a.decisions.get(0) for a in apps[1:]}
        assert len(vals) == 1 and None not in vals

    def test_minority_crashes_tolerated(self):
        sys_, apps, cts = build(n=5, seed=3)
        propose_all(sys_, apps, 0)
        sys_.machines[0].crash_at(0.001)
        sys_.machines[1].crash_at(0.002)
        sys_.run(until=5.0)
        vals = {a.decisions.get(0) for a in apps[2:]}
        assert len(vals) == 1 and None not in vals


class TestWithFalseSuspicions:
    def test_wrong_suspicion_of_coordinator_is_safe(self):
        """◊S allows arbitrary false suspicions; agreement must survive
        them (only liveness may suffer, and the oracle later repents)."""
        scripts = {
            1: [(0.0005, "suspect", 0), (0.5, "restore", 0)],
            2: [(0.0008, "suspect", 0), (0.5, "restore", 0)],
        }
        sys_, apps, cts = build(fd="oracle", oracle_scripts=scripts, seed=4)
        propose_all(sys_, apps, 0)
        sys_.run(until=5.0)
        vals = {a.decisions.get(0) for a in apps}
        assert len(vals) == 1 and None not in vals

    def test_flapping_suspicions_safe(self):
        scripts = {
            i: [(0.001 * k, "suspect" if k % 2 == 0 else "restore", (i + 1) % 5)
                for k in range(20)]
            for i in range(5)
        }
        sys_, apps, cts = build(fd="oracle", oracle_scripts=scripts, seed=5)
        propose_all(sys_, apps, 0)
        sys_.run(until=5.0)
        vals = {a.decisions.get(0) for a in apps}
        assert len(vals) == 1 and None not in vals


class TestUnderLoss:
    def test_decides_despite_message_loss(self):
        sys_, apps, cts = build(loss=0.15, seed=6)
        propose_all(sys_, apps, 0)
        sys_.run(until=10.0)
        vals = {a.decisions.get(0) for a in apps}
        assert len(vals) == 1 and None not in vals
