"""Integration tests: pipelined multi-switch replacement end to end.

The ISSUE-5 acceptance surface: a triple-protocol switch chain where
each next ``changeABcast`` is issued before the previous window closes
runs clean (identical chains everywhere, no violations, overlapping
windows with convergence metrics), reports are byte-identical across
``--jobs`` fan-outs and trace depths, and a crash inside a pipelined
chain recovers via ``on_restart`` resuming the pending chain.
"""

from repro.scenarios import Campaign, get_scenario, run_campaign, run_scenario


class TestPipelinedTripleSwitch:
    def test_runs_clean_with_overlapping_windows(self):
        result = run_scenario(get_scenario("pipelined-triple-switch"), seed=0)
        assert result.ok, result.violations
        assert result.violations["chain agreement"] == []
        assert result.violations["uniform agreement"] == []
        assert result.violations["uniform total order"] == []
        # Three chained versions, every stack completed every one.
        assert [w["version"] for w in result.switch_windows] == [1, 2, 3]
        assert all(w["stacks_completed"] == 5 for w in result.switch_windows)
        # Pipelined: each later window opened before the previous closed.
        overlaps = [w["overlap_with_previous"] for w in result.switch_windows[1:]]
        assert all(o > 0.0 for o in overlaps)
        assert result.switch_chain["pipelined"] is True

    def test_chain_convergence_metrics(self):
        result = run_scenario(get_scenario("pipelined-triple-switch"), seed=0)
        chain = result.switch_chain
        assert chain["versions"] == [1, 2, 3]
        assert chain["converged_at"] is not None
        assert chain["convergence_time"] > 0.0
        assert chain["chain_started_at"] < chain["converged_at"]

    def test_every_stack_traverses_the_identical_chain(self):
        result = run_scenario(get_scenario("pipelined-triple-switch"), seed=0)
        trajectories = result.switch_chain["trajectories"]
        assert len(trajectories) == 5
        reference = trajectories["0"]
        assert [prot for _v, prot in reference] == [
            "abcast-ct", "abcast-seq", "abcast-token", "abcast-ct"
        ]
        assert all(traj == reference for traj in trajectories.values())
        assert set(result.final_protocols.values()) == {"abcast-ct"}

    def test_deep_overlap_variant_is_clean_and_staler(self):
        """phase="started" chaining: requests issued inside the previous
        unbind→bind gap still serialise through the version chain."""
        result = run_scenario(get_scenario("pipelined-deep-overlap"), seed=0)
        assert result.ok, result.violations
        overlaps = [w["overlap_with_previous"] for w in result.switch_windows[1:]]
        assert all(o > 0.0 for o in overlaps)
        assert result.switch_chain["stale_discards"]  # reissues went stale

    def test_multi_version_staleness_under_partition(self):
        """The healed minority replays the chain and goes ≥2 versions
        stale on the way — the classification the report exposes."""
        result = run_scenario(get_scenario("pipelined-under-partition"), seed=0)
        assert result.ok, result.violations
        stale = result.switch_chain["stale_discards"]
        assert stale.get("gap=2", 0) > 0


class TestPipelinedDeterminism:
    def test_reports_byte_identical_across_jobs_and_trace_modes(self):
        campaign = Campaign(
            name="pipelined-determinism",
            scenarios=(
                get_scenario("pipelined-triple-switch"),
                get_scenario("oneway-partition-switch"),
            ),
        )
        seeds = (0,)
        serial = run_campaign(campaign, seeds=seeds, jobs=1)
        parallel = run_campaign(campaign, seeds=seeds, jobs=2)
        full = run_campaign(campaign, seeds=seeds, jobs=1, trace="full")
        assert serial.to_json() == parallel.to_json()
        assert serial.to_json() == full.to_json()
        assert serial.ok


class TestPipelinedRecovery:
    def test_crash_during_pipelined_switch_recovers_via_chain_resume(self):
        """m3 crashes 20 ms into the chain and recovers mid-flight: its
        on_restart resumes the pending chain, the GM re-join narrows its
        exemption back, and it converges on the full chain."""
        result = run_scenario(get_scenario("pipelined-crash-recover-chain"), seed=0)
        assert result.ok, result.violations
        assert result.crashed == {3: 2.52}
        assert 3 in result.rejoined
        trajectories = result.switch_chain["trajectories"]
        protocols = lambda sid: [p for _v, p in trajectories[sid]]  # noqa: E731
        reference = protocols("0")
        assert reference == ["abcast-ct", "abcast-seq", "abcast-ct"]
        # The recovered stack traversed the same chain (possibly the
        # same — never a reordered or diverging one).
        recovered = protocols("3")
        assert recovered == reference
        assert result.violations["chain agreement"] == []
        assert result.violations["recovery liveness"] == []


class TestOneWayPartitionScenario:
    def test_oneway_partition_switch_converges_after_heal(self):
        result = run_scenario(get_scenario("oneway-partition-switch"), seed=0)
        assert result.ok, result.violations
        # Nobody crashed; every stack (including the muted side) must
        # finish the switch and deliver everything.
        assert result.crashed == {}
        assert result.ordered_common == result.sent_total
        assert [f["kind"] for f in result.faults] == ["partition-oneway", "heal"]
        assert set(result.final_protocols.values()) == {"abcast-ct"}
