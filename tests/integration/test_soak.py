"""Soak test: sustained operation through repeated adaptation and faults.

One long (simulated) run combining everything the library does: load,
four protocol switches across all three implementations, module
retirement, live group membership, and a late minority crash — with the
full property battery at the end.  This is the closest the suite comes
to the paper's vision of a system that "must run non-stop".
"""

import pytest

from repro.dpu import (
    assert_abcast_properties,
    assert_weak_stack_well_formedness,
)
from repro.experiments import (
    GroupCommConfig,
    PROTOCOL_CT,
    PROTOCOL_SEQ,
    PROTOCOL_TOKEN,
    build_group_comm_system,
)
from repro.kernel import WellKnown


@pytest.mark.slow
def test_soak_switches_retirement_membership_and_crash():
    duration = 24.0
    n = 5
    cfg = GroupCommConfig(
        n=n, seed=99, load_msgs_per_sec=60.0, load_stop=duration, with_gm=True
    )
    gcs = build_group_comm_system(cfg)
    for s in range(n):
        gcs.manager.module(s).retire_old_after = 2.0

    plan = [
        (4.0, PROTOCOL_SEQ),
        (8.0, PROTOCOL_TOKEN),
        (12.0, PROTOCOL_CT),
        (16.0, PROTOCOL_CT),  # the paper's same-protocol replacement
    ]
    for at, prot in plan:
        gcs.manager.request_change(prot, from_stack=int(at) % n, at=at)

    crash_stack, crash_at = 4, 20.0
    gcs.system.crash_at(crash_stack, crash_at)

    gcs.run(until=duration)
    gcs.run_to_quiescence(extra=10.0)

    alive = [s for s in range(n) if s != crash_stack]

    # 1. All four switches applied on the survivors, in order.
    for s in alive:
        assert gcs.manager.module(s).seq_number == 4
        assert gcs.manager.module(s).current_protocol == PROTOCOL_CT

    # 2. Retirement kept the stack bounded: at most the active module
    #    plus the not-yet-retired previous one.
    for s in alive:
        assert len(gcs.system.stack(s).modules_providing(WellKnown.ABCAST)) <= 2

    # 3. Membership expelled the crashed machine, identically everywhere.
    gms = [
        next(m for m in gcs.system.stack(s).modules.values() if m.protocol == "gm")
        for s in alive
    ]
    assert all(gm.members == frozenset(alive) for gm in gms)
    assert len({tuple(gm.view_history) for gm in gms}) == 1

    # 4. The full property battery across everything that happened.
    in_flight = {
        k for k, (sender, _t) in gcs.log.sends.items() if sender == crash_stack
    }
    assert_abcast_properties(
        gcs.log, {crash_stack: crash_at}, list(range(n)), in_flight_ok=in_flight
    )
    assert_weak_stack_well_formedness(gcs.system.trace)

    # 5. Sanity on volume: ~24s at 60 msg/s minus the crashed stack's tail.
    assert len(gcs.log.sends) > 1000
