"""Integration tests: the Maestro-style and Graceful-style baselines.

Correctness first (they must actually switch and keep total order), then
the paper's comparison claims: both baselines block the application;
Algorithm 1 does not.
"""

import pytest

from repro.baselines.switchbase import DrainingSwitchModule
from repro.dpu import assert_abcast_properties
from repro.experiments import (
    GroupCommConfig,
    PROTOCOL_CT,
    build_group_comm_system,
)
from repro.kernel import WellKnown


def run_baseline(baseline, n=4, seed=17, duration=8.0, load=60.0):
    cfg = GroupCommConfig(
        n=n,
        seed=seed,
        load_msgs_per_sec=load,
        load_stop=duration,
        baseline=baseline,
    )
    gcs = build_group_comm_system(cfg)
    switch_modules = [
        m
        for stack in gcs.system.stacks
        for m in stack.modules.values()
        if isinstance(m, DrainingSwitchModule)
    ]
    trigger = switch_modules[0]
    gcs.system.sim.schedule_at(
        duration / 2.0, trigger.call, WellKnown.R_ABCAST, "change_protocol", PROTOCOL_CT
    )
    gcs.run(until=duration)
    gcs.run_to_quiescence()
    return gcs, switch_modules


@pytest.mark.parametrize("baseline", ["maestro", "graceful"])
class TestBaselineCorrectness:
    def test_switch_completes_on_every_stack(self, baseline):
        gcs, mods = run_baseline(baseline)
        assert all(m.counters.get("switches") == 1 for m in mods)
        for stack in gcs.system.stacks:
            assert stack.bound_module(WellKnown.ABCAST).protocol == PROTOCOL_CT

    def test_abcast_properties_hold_across_switch(self, baseline):
        gcs, mods = run_baseline(baseline)
        assert_abcast_properties(gcs.log, {}, list(range(gcs.config.n)))

    def test_no_message_lost(self, baseline):
        gcs, mods = run_baseline(baseline)
        sent = set(gcs.log.sends)
        for s in range(gcs.config.n):
            assert gcs.log.delivered_set(s) == sent


class TestComparisonClaims:
    def test_baselines_block_the_application(self):
        """Paper, Section 5.3: Maestro blocks the application; Graceful
        blocks it between deactivation and activation."""
        for baseline in ("maestro", "graceful"):
            gcs, mods = run_baseline(baseline)
            blocked = sum(m.app_blocked_total for m in mods)
            buffered = sum(m.counters.get("app_calls_buffered") for m in mods)
            assert blocked > 0.0, f"{baseline} should have blocked the app"
            assert buffered > 0, f"{baseline} should have buffered app calls"

    def test_maestro_blocks_longer_than_graceful(self):
        """Maestro blocks from the announcement; Graceful only from
        deactivation (after its prepare barrier)."""
        gcs_m, mods_m = run_baseline("maestro", seed=21)
        gcs_g, mods_g = run_baseline("graceful", seed=21)
        blocked_m = sum(m.app_blocked_total for m in mods_m)
        blocked_g = sum(m.app_blocked_total for m in mods_g)
        # Both block; Maestro's whole-stack recreation (3x creation cost)
        # plus announce-to-go window makes it strictly worse.
        assert blocked_m > blocked_g

    def test_algorithm1_does_not_buffer_app_calls(self):
        cfg = GroupCommConfig(
            n=4, seed=17, load_msgs_per_sec=60.0, load_stop=8.0
        )
        gcs = build_group_comm_system(cfg)
        gcs.manager.request_change(PROTOCOL_CT, from_stack=0, at=4.0)
        gcs.run(until=8.0)
        gcs.run_to_quiescence()
        # No r-abcast call ever waits: the indirection forwards or the
        # kernel's abcast-level queue holds it below the app's view.
        for stack in gcs.system.stacks:
            assert stack.blocked_call_count(WellKnown.R_ABCAST) == 0

    def test_maestro_replaces_whole_stack_cost(self):
        gcs, mods = run_baseline("maestro", seed=23)
        assert all(m.modules_replaced_factor() == 3 for m in mods)
