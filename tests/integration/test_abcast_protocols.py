"""Integration tests: the three ABcast implementations against the spec."""

import pytest

from repro.dpu import assert_abcast_properties
from repro.dpu.probes import DeliveryLog
from repro.abcast import CtAbcastModule, SequencerAbcastModule, TokenAbcastModule
from repro.consensus import CtConsensusModule
from repro.fd import HeartbeatFd
from repro.kernel import Module, System, WellKnown
from repro.net import Rp2pModule, SimNetwork, SwitchedLan, UdpModule
from repro.rbcast import RbcastModule
from repro.sim import ConstantLatency, ms


def build(proto, n=4, seed=0, loss=0.0):
    sys_ = System(n=n, seed=seed)
    net = SimNetwork(
        sys_.sim, sys_.machines,
        SwitchedLan(latency=ConstantLatency(0.0002), loss_rate=loss),
    )
    group = list(range(n))
    log = DeliveryLog()

    class Sender(Module):
        REQUIRES = (WellKnown.ABCAST,)
        PROTOCOL = "sender"

        def __init__(self, stack):
            super().__init__(stack)
            self.seq = 0
            self.subscribe(
                WellKnown.ABCAST,
                "adeliver",
                lambda o, p, s: log.note_delivery(p[0], self.stack_id, self.now),
            )

        def send(self):
            key = ("wl", self.stack_id, self.seq)
            self.seq += 1
            log.note_send(key, self.stack_id, self.now)
            self.call(WellKnown.ABCAST, "abcast", (key, None), 256)

    senders, modules = [], []
    for st in sys_.stacks:
        st.add_module(UdpModule(st, net))
        st.add_module(Rp2pModule(st))
        st.add_module(HeartbeatFd(st, group, period=ms(20), timeout=ms(100)))
        st.add_module(RbcastModule(st, group))
        if proto == "ct":
            st.add_module(CtConsensusModule(st, group))
            mod = CtAbcastModule(st, group)
        elif proto == "seq":
            mod = SequencerAbcastModule(st, group)
        else:
            mod = TokenAbcastModule(st, group)
        st.add_module(mod)
        modules.append(mod)
        snd = Sender(st)
        st.add_module(snd)
        senders.append(snd)
    return sys_, senders, modules, log


PROTOS = ("ct", "seq", "token")


@pytest.mark.parametrize("proto", PROTOS)
class TestSpecCompliance:
    def test_all_four_properties_under_interleaved_load(self, proto):
        sys_, senders, modules, log = build(proto, seed=3)
        for k in range(15):
            for i, s in enumerate(senders):
                sys_.sim.schedule(0.005 * k + 0.0007 * i, s.send)
        sys_.run(until=5.0)
        assert_abcast_properties(log, {}, [0, 1, 2, 3])
        assert all(len(log.delivery_sequence(i)) == 60 for i in range(4))

    def test_burst_from_single_sender(self, proto):
        sys_, senders, modules, log = build(proto, seed=4)
        for _ in range(30):
            senders[2].send()
        sys_.run(until=5.0)
        assert_abcast_properties(log, {}, [0, 1, 2, 3])
        # FIFO-ish: a single sender's messages keep their relative order
        # in the total order (all three protocols preserve per-sender
        # submission order on the happy path).
        seq0 = [k for k in log.delivery_sequence(0) if k[1] == 2]
        assert seq0 == sorted(seq0, key=lambda k: k[2])

    def test_reliable_under_loss(self, proto):
        sys_, senders, modules, log = build(proto, seed=5, loss=0.1)
        for k in range(10):
            for s in senders:
                sys_.sim.schedule(0.01 * k, s.send)
        sys_.run(until=15.0)
        assert_abcast_properties(log, {}, [0, 1, 2, 3])


class TestCtSpecific:
    def test_tolerates_minority_crash(self):
        sys_, senders, modules, log = build("ct", n=5, seed=6)
        for k in range(10):
            for s in senders:
                sys_.sim.schedule(0.01 * k, s.send)
        sys_.machines[0].crash_at(0.035)
        sys_.run(until=10.0)
        crashed = {0: 0.035}
        in_flight = {
            key for key, (sender, _t) in log.sends.items() if sender == 0
        }
        assert_abcast_properties(
            log, crashed, [0, 1, 2, 3, 4], in_flight_ok=in_flight
        )
        # survivors deliver identical sequences
        seqs = {tuple(log.delivery_sequence(i)) for i in (1, 2, 3, 4)}
        assert len(seqs) == 1

    def test_batching_under_load(self):
        sys_, senders, modules, log = build("ct", seed=7)
        for _ in range(20):
            for s in senders:
                s.send()
        sys_.run(until=5.0)
        # 80 messages needed far fewer consensus instances than messages.
        ct = modules[0]
        assert ct.counters.get("batches_applied") < 40
        assert len(log.delivery_sequence(0)) == 80


class TestSequencerSpecific:
    def test_sequencer_orders_everything(self):
        sys_, senders, modules, log = build("seq", seed=8)
        for s in senders:
            s.send()
        sys_.run(until=2.0)
        sequencer_module = modules[0]
        assert sequencer_module.is_sequencer
        assert sequencer_module.counters.get("orders_assigned") == 4

    def test_non_sequencer_never_orders(self):
        sys_, senders, modules, log = build("seq", seed=9)
        for s in senders:
            s.send()
        sys_.run(until=2.0)
        assert modules[1].counters.get("orders_assigned") == 0


class TestTokenSpecific:
    def test_token_circulates_while_idle(self):
        sys_, senders, modules, log = build("token", seed=10)
        sys_.run(until=0.5)
        receipts = [m.counters.get("token_receipts") for m in modules]
        assert all(r > 5 for r in receipts)

    def test_ordering_work_shared(self):
        sys_, senders, modules, log = build("token", seed=11)
        for k in range(10):
            for s in senders:
                sys_.sim.schedule(0.01 * k, s.send)
        sys_.run(until=5.0)
        orders = [m.counters.get("orders_assigned") for m in modules]
        assert sum(orders) == 40
        assert sum(1 for o in orders if o > 0) >= 3  # spread over the ring
