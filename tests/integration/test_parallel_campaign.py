"""Integration tests: process-parallel campaigns and the --compare gate.

The contract under test is the deterministic merge: ``run_campaign`` with
any ``jobs`` value must produce a **byte-identical** report, because each
``(spec, seed)`` cell is a pure function and results are merged in
submission order.  ``compare_reports`` then exploits that determinism as
a cross-commit regression gate.
"""

import copy
import json

import pytest

from repro.errors import ScenarioError
from repro.experiments import PROTOCOL_SEQ
from repro.scenarios import (
    Campaign,
    Crash,
    ScenarioSpec,
    SwitchAt,
    compare_reports,
    run_campaign,
)
from repro.scenarios.__main__ import main as cli_main

SPEC_A = ScenarioSpec(
    name="par-switch",
    n=3,
    duration=1.5,
    load_msgs_per_sec=50.0,
    switches=(SwitchAt(protocol=PROTOCOL_SEQ, at=0.8),),
    quiescence_extra=6.0,
)
SPEC_B = ScenarioSpec(
    name="par-crash",
    n=3,
    duration=1.5,
    load_msgs_per_sec=50.0,
    faults=(Crash(at=1.0, machine=2),),
    quiescence_extra=6.0,
)
CAMPAIGN = Campaign(name="par", scenarios=(SPEC_A, SPEC_B))


class TestParallelIdentity:
    def test_jobs1_and_jobs4_reports_byte_identical(self):
        serial = run_campaign(CAMPAIGN, seeds=(0, 1), jobs=1)
        parallel = run_campaign(CAMPAIGN, seeds=(0, 1), jobs=4)
        assert serial.to_json() == parallel.to_json()

    def test_jobs0_uses_cpu_count_and_matches(self):
        serial = run_campaign(CAMPAIGN, seeds=(0,), jobs=1)
        auto = run_campaign(CAMPAIGN, seeds=(0,), jobs=0)
        assert serial.to_json() == auto.to_json()

    def test_negative_jobs_rejected(self):
        with pytest.raises(ScenarioError):
            run_campaign(CAMPAIGN, seeds=(0,), jobs=-1)

    def test_result_order_is_spec_major_seed_minor(self):
        result = run_campaign(CAMPAIGN, seeds=(3, 1), jobs=2)
        assert [(r.name, r.seed) for r in result.results] == [
            ("par-switch", 3),
            ("par-switch", 1),
            ("par-crash", 3),
            ("par-crash", 1),
        ]


class TestCompareReports:
    def _report(self):
        return run_campaign(CAMPAIGN, seeds=(0,), jobs=1).to_dict()

    def test_identical_reports_no_drift(self):
        report = self._report()
        assert compare_reports(report, copy.deepcopy(report)) == []

    def test_violation_drift_detected(self):
        base = self._report()
        cur = copy.deepcopy(base)
        cur["runs"][0]["ok"] = False
        cur["runs"][0]["violations"]["uniform agreement"] = ["key k lost"]
        drift = compare_reports(base, cur)
        assert any("ok" in line for line in drift)
        assert any("violations" in line for line in drift)

    def test_metric_drift_detected(self):
        base = self._report()
        cur = copy.deepcopy(base)
        cur["runs"][1]["events_processed"] += 1
        drift = compare_reports(base, cur)
        assert len(drift) == 1 and "events_processed" in drift[0]

    def test_missing_run_detected(self):
        base = self._report()
        cur = copy.deepcopy(base)
        dropped = cur["runs"].pop()
        drift = compare_reports(base, cur)
        assert any(dropped["name"] in line and "baseline only" in line
                   for line in drift)


class TestCli:
    """--jobs and --compare through the real CLI entry point."""

    def test_jobs_flag_report_matches_serial(self, tmp_path):
        # The CLI only exposes registered scenarios; use a library one.
        out1 = tmp_path / "serial.json"
        out2 = tmp_path / "parallel.json"
        args = ["--scenario", "latency-spike-switch", "--seeds", "2"]
        assert cli_main(args + ["--jobs", "1", "--out", str(out1)]) == 0
        assert cli_main(args + ["--jobs", "2", "--out", str(out2)]) == 0
        assert out1.read_text() == out2.read_text()

    def test_compare_clean_and_drifted(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        args = ["--scenario", "latency-spike-switch", "--seed", "0"]
        assert cli_main(args + ["--out", str(baseline)]) == 0
        # Same code, same seed: no drift.
        assert cli_main(args + ["--compare", str(baseline)]) == 0
        # Tamper with the stored report: drift, exit 3.
        doc = json.loads(baseline.read_text())
        doc["runs"][0]["sent_total"] += 7
        baseline.write_text(json.dumps(doc))
        assert cli_main(args + ["--compare", str(baseline)]) == 3
        assert "DRIFT" in capsys.readouterr().err

    def test_compare_unreadable_baseline_exit_2(self, tmp_path):
        missing = tmp_path / "nope.json"
        assert cli_main(["--scenario", "latency-spike-switch", "--seed", "0",
                         "--compare", str(missing)]) == 2
