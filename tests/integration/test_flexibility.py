"""Integration tests: experiment X2 — the structural flexibility claim.

Paper, Section 4.2: "our solution does not limit the possible
replacements by imposing any restrictions on the services that a newly
added protocol may require.  Unlike Maestro, replacement of a single
protocol in our system does not require a whole protocol stack to be
replaced."  Graceful Adaptation's AACs "can only use the services
required by m", which "limits the possible replacements".

Here: the stack initially runs the *sequencer* ABcast (requires only
rp2p + rbcast; no consensus module exists anywhere).  Switching to the
consensus-based ABcast requires the ``consensus`` service — and
transitively the ``fd`` service is already present — so Algorithm 1's
``create_module`` recursion must instantiate the consensus module on
every stack mid-flight.  The Graceful-Adaptation baseline must refuse the
same change.
"""

import pytest

from repro.baselines import GracefulAdaptorModule
from repro.dpu import assert_abcast_properties
from repro.errors import RequirementError
from repro.experiments import (
    GroupCommConfig,
    PROTOCOL_CT,
    PROTOCOL_SEQ,
    build_group_comm_system,
)
from repro.kernel import WellKnown


def build_seq_system(**kwargs):
    cfg = GroupCommConfig(
        n=4,
        seed=13,
        load_msgs_per_sec=60.0,
        load_stop=6.0,
        initial_protocol=PROTOCOL_SEQ,
        **kwargs,
    )
    return build_group_comm_system(cfg)


class TestOurSolutionCrossesRequirements:
    def test_no_consensus_module_initially(self):
        gcs = build_seq_system()
        for stack in gcs.system.stacks:
            assert stack.bound_module(WellKnown.CONSENSUS) is None

    def test_switch_to_ct_creates_consensus_everywhere(self):
        gcs = build_seq_system()
        gcs.manager.request_change(PROTOCOL_CT, from_stack=1, at=3.0)
        gcs.run(until=6.0)
        gcs.run_to_quiescence()
        for stack in gcs.system.stacks:
            consensus = stack.bound_module(WellKnown.CONSENSUS)
            assert consensus is not None, f"stack {stack.stack_id} lacks consensus"
            assert stack.bound_module(WellKnown.ABCAST).protocol == PROTOCOL_CT
        assert_abcast_properties(gcs.log, {}, [0, 1, 2, 3])

    def test_traffic_flows_after_cross_requirement_switch(self):
        gcs = build_seq_system()
        gcs.manager.request_change(PROTOCOL_CT, from_stack=0, at=3.0)
        gcs.run(until=6.0)
        gcs.run_to_quiescence()
        post_switch = {k for k, (s, t) in gcs.log.sends.items() if t > 4.0}
        assert post_switch, "load generator kept sending after the switch"
        for s in range(4):
            assert post_switch <= gcs.log.delivered_set(s)


class TestGracefulRefusesTheSameChange:
    def test_requirement_restriction_enforced(self):
        gcs = build_seq_system(baseline="graceful")
        adaptor = next(
            m
            for m in gcs.system.stack(0).modules.values()
            if isinstance(m, GracefulAdaptorModule)
        )
        with pytest.raises(RequirementError, match="consensus"):
            adaptor.request_change(PROTOCOL_CT)

    def test_graceful_allows_requirement_subset(self):
        """Switching within the allowed service set still works: the
        restriction is specific, not a blanket refusal."""
        gcs = build_seq_system(baseline="graceful")
        adaptor = next(
            m
            for m in gcs.system.stack(0).modules.values()
            if isinstance(m, GracefulAdaptorModule)
        )
        adaptor.request_change(PROTOCOL_SEQ)  # same requirements: fine
        gcs.run(until=6.0)
        gcs.run_to_quiescence()
        assert adaptor.current_protocol == PROTOCOL_SEQ
        assert adaptor.counters.get("adaptations_completed") == 1
