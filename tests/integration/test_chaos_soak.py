"""Chaos soak acceptance: graceful degradation on real UDP sockets.

The tentpole end-to-end check of the realtime chaos layer, in both
directions:

* the **guarded** chaos soak — crash → recover → partition → heal
  through a two-hop protocol-switch chain, with GM expel/re-join —
  completes with zero property violations, a full drain, and the forged
  stale-change probe *discarded*;
* the **unguarded** (paper-literal) variant accepts the forged stale
  change and must FAIL the chain-agreement check — the teeth proof that
  a bad run cannot slip through the chaos gate.

Durations are scaled down from the CLI defaults to keep CI wall-clock
reasonable while preserving the calibration that matters: the crash
outage exceeds the failure-detector timeout (re-join exercised), the
partition window stays under it (no false suspicion).
"""

from __future__ import annotations

import pytest

from repro.experiments.common import PROTOCOL_SEQ, PROTOCOL_TOKEN
from repro.runtime.soak import CHAOS_PLAN, SoakConfig, run_soak


def _chaos_config(**overrides):
    defaults = dict(
        nodes=3,
        duration=10.0,
        seed=0,
        rate_per_sec=45.0,
        payload_bytes=128,
        plan=CHAOS_PLAN,
        health_port=None,
        chaos=True,
        drain_extra=8.0,
    )
    defaults.update(overrides)
    return SoakConfig(**defaults)


@pytest.mark.slow
def test_chaos_soak_degrades_gracefully_and_recovers():
    report = run_soak(_chaos_config())
    assert report["violations"] == {}
    assert report["drained"], report["drain_pending"]
    assert report["switches_ok"] and report["rejoin_ok"]
    assert report["ok"]

    # The fault plan actually ran: every fault kind fired and the
    # transport saw partition drops and impairment losses.
    counters = report["chaos"]["counters"]
    for kind in ("crash", "recover", "partition", "heal", "impair-link",
                 "latency-spike"):
        assert counters.get(kind, 0) >= 1, counters
    assert report["transport"]["dropped_partition"] > 0
    assert report["transport"]["dropped_crashed"] > 0

    # The victim re-joined through the GM state transfer.
    assert list(report["chaos"]["rejoined"]) == ["2"]

    # The switch chain completed on the survivors and caught the victim
    # up: everyone ends on the final protocol.
    assert set(report["protocols"].values()) == {PROTOCOL_TOKEN}

    # The forged stale change was discarded by Algorithm 1's guard.
    assert report["chaos"]["stale_changes_discarded"] >= 1

    # Wall-clock latency percentiles are reported and sane.
    latency = report["latency"]
    assert latency["count"] > 0
    assert 0 < latency["p50"] <= latency["p95"] <= latency["p99"] <= latency["max"]


@pytest.mark.slow
def test_unguarded_chaos_soak_fails_chain_agreement():
    report = run_soak(_chaos_config(guard_change_sn=False, seed=0))
    assert not report["ok"]
    assert report["violations"].get("chain agreement"), report["violations"]
    # The diverging stack is the probe's target (stack 1): its chain
    # grew an extra hop the others never traversed.
    assert any("ct" in v or "different" in v
               for v in report["violations"]["chain agreement"])


@pytest.mark.slow
def test_plain_soak_still_passes_with_gm_riding_along():
    # Chaos off, GM on: the membership module must be load-bearing but
    # inert when nothing crashes.
    report = run_soak(
        SoakConfig(
            nodes=3,
            duration=3.0,
            seed=5,
            rate_per_sec=45.0,
            payload_bytes=128,
            plan=((0.3, PROTOCOL_SEQ), (0.6, PROTOCOL_TOKEN)),
            health_port=None,
            with_gm=True,
            drain_extra=6.0,
        )
    )
    assert report["ok"], {
        k: report[k] for k in ("drained", "drain_pending", "switches_ok",
                               "violations")
    }
    assert report["latency"]["count"] > 0
