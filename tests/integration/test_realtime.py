"""The acceptance test of the runtime seam: the identical stack — the
same unmodified UDP/RP2P/FD/rbcast/consensus/ABcast/replacement module
classes the simulator runs — boots on :class:`RealtimeBackend` over real
asyncio UDP sockets, carries client load, completes a protocol switch
chain mid-run, and satisfies the ABcast properties on the delivery log.

Wall-clock timings are deliberately short (a few seconds total) with
wide margins, so the test is CI-stable on loaded machines.
"""

from __future__ import annotations

import pytest

from repro.dpu.abcast_checker import check_all_abcast_properties
from repro.experiments.common import PROTOCOL_SEQ, PROTOCOL_TOKEN
from repro.runtime import RealtimeBackend
from repro.runtime.soak import SoakConfig, build_soak_system, run_soak


@pytest.mark.slow
def test_unmodified_stack_switches_protocols_over_real_udp():
    config = SoakConfig(
        nodes=3,
        duration=2.5,
        rate_per_sec=45.0,
        payload_bytes=128,
        plan=((0.3, PROTOCOL_SEQ), (0.6, PROTOCOL_TOKEN)),
        health_port=None,
        drain_extra=6.0,
    )
    backend = RealtimeBackend(config.nodes, seed=3)
    backend.start()
    soak = build_soak_system(config, backend)
    for at, protocol in soak.switch_times:
        soak.manager.request_change(protocol, from_stack=0, at=at)
    try:
        backend.run(config.duration)
        # Drain: every node must deliver every send within the budget.
        deadline = backend.sim.now + config.drain_extra
        while backend.sim.now < deadline:
            backend.run(config.drain_step)
            targets = set(soak.log.sends)
            if targets and all(
                targets <= soak.log.delivered_set(s) for s in range(backend.n)
            ):
                break
    finally:
        backend.stop()

    # Datagrams really crossed sockets, and client load really flowed.
    stats = backend.network.stats()
    assert stats["sent"] > 0 and stats["received"] > 0
    assert len(soak.log.sends) > 0

    # Both switches completed on every stack, ending on the token protocol.
    assert soak.manager.replacement_complete(1)
    assert soak.manager.replacement_complete(2)
    assert set(soak.manager.current_protocols().values()) == {PROTOCOL_TOKEN}

    # Everyone delivered everything, in the same total order.
    targets = set(soak.log.sends)
    for s in range(backend.n):
        assert targets <= soak.log.delivered_set(s)
    violations = check_all_abcast_properties(
        soak.log, crashed={}, stacks=list(range(backend.n))
    )
    assert not any(violations.values()), violations


@pytest.mark.slow
def test_short_soak_run_reports_ok():
    report = run_soak(
        SoakConfig(nodes=3, duration=2.0, rate_per_sec=30.0, health_port=0)
    )
    assert report["ok"], report
    assert report["backend"] == "realtime"
    assert report["health_ok"] is True
    assert report["switches_ok"] and report["drained"]
