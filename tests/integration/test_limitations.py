"""Integration tests: honest boundaries of Algorithm 1.

The change request travels *through the old protocol's total order*
(Algorithm 1, line 6).  Corollary: a protocol that has stopped delivering
— e.g. a fixed-sequencer ABcast whose sequencer crashed — cannot be
replaced by this mechanism, because the change message is never
Adelivered.  This is a real, documented boundary of the paper's approach
(its evaluation replaces live protocols only), and these tests pin it
down rather than hide it.
"""


from repro.experiments import (
    GroupCommConfig,
    PROTOCOL_CT,
    PROTOCOL_SEQ,
    build_group_comm_system,
)


def build_seq(n=4, seed=51, duration=8.0):
    cfg = GroupCommConfig(
        n=n,
        seed=seed,
        load_msgs_per_sec=40.0,
        load_stop=duration,
        initial_protocol=PROTOCOL_SEQ,
    )
    return build_group_comm_system(cfg)


class TestSequencerStall:
    def test_sequencer_crash_stalls_delivery(self):
        """Safety kept, liveness lost: no orders after the sequencer dies."""
        gcs = build_seq()
        gcs.system.crash_at(0, 3.0)  # rank 0 is the sequencer
        gcs.run(until=8.0)
        for s in (1, 2, 3):
            late = [t for _k, t in gcs.log.deliveries.get(s, []) if t > 3.1]
            assert late == [], f"stack {s} delivered after the sequencer died"

    def test_survivors_agree_on_the_delivered_prefix(self):
        gcs = build_seq(seed=52)
        gcs.system.crash_at(0, 3.0)
        gcs.run(until=8.0)
        seqs = {tuple(gcs.log.delivery_sequence(s)) for s in (1, 2, 3)}
        assert len(seqs) == 1  # identical prefixes: safety preserved


class TestCannotReplaceDeadProtocol:
    def test_change_request_never_applies(self):
        """The documented boundary: replacing the crashed-sequencer
        protocol via Algorithm 1 does not work — the change request
        would have to be ordered by the very protocol that is dead."""
        gcs = build_seq(seed=53)
        gcs.system.crash_at(0, 3.0)
        # A survivor tries to escape to the consensus-based protocol:
        gcs.manager.request_change(PROTOCOL_CT, from_stack=1, at=4.0)
        gcs.run(until=10.0)
        for s in (1, 2, 3):
            repl = gcs.manager.module(s)
            assert repl.seq_number == 0, "switch must NOT have happened"
            assert repl.current_protocol == PROTOCOL_SEQ
        # The request is still pending forever at the initiator.
        assert len(gcs.manager.module(1)._pending_changes) == 1

    def test_replacing_a_live_protocol_from_the_same_state_works(self):
        """Control experiment: without the crash, the identical change
        request succeeds — isolating the cause to the dead protocol."""
        gcs = build_seq(seed=53)
        gcs.manager.request_change(PROTOCOL_CT, from_stack=1, at=4.0)
        gcs.run(until=10.0)
        gcs.run_to_quiescence()
        for s in range(4):
            assert gcs.manager.module(s).seq_number == 1
            assert gcs.manager.module(s).current_protocol == PROTOCOL_CT


class TestTokenStall:
    def test_token_holder_crash_stalls_ring(self):
        cfg = GroupCommConfig(
            n=4,
            seed=54,
            load_msgs_per_sec=40.0,
            load_stop=8.0,
            initial_protocol="abcast-token",
        )
        gcs = build_group_comm_system(cfg)
        gcs.system.crash_at(2, 3.0)  # eventually the token dies with it
        gcs.run(until=8.0)
        for s in (0, 1, 3):
            late = [t for _k, t in gcs.log.deliveries.get(s, []) if t > 3.5]
            assert late == [], f"stack {s} delivered after the token was lost"
