"""The paper's Figures 1–3, as executable tests.

* **Figure 1** — protocols P, Q, R stacked over the network: P requires
  q, Q requires r, R requires the network.  Built on three stacks; a
  call travels down and the responses travel back up.
* **Figure 2** — service calls and responses: "responses can occur in
  one or many stacks"; a response is an invocation of the *consumer*
  module by the provider, locally or remotely.
* **Figure 3** — the module composition with the replacement module:
  consumers call ``r-p``; ``Repl-P`` requires ``p``; the updateable
  provider is bound to ``p`` and swapped without the consumers noticing.
"""


from repro.dpu import IndirectionModule
from repro.kernel import Module, System, WellKnown
from repro.net import Rp2pModule, SimNetwork, SwitchedLan, UdpModule
from repro.sim import ConstantLatency


class ProtocolR(Module):
    """Bottom protocol: provides r over the network (Fig. 1's R)."""

    PROVIDES = ("r",)
    REQUIRES = (WellKnown.RP2P,)
    PROTOCOL = "R"

    def __init__(self, stack, group):
        super().__init__(stack)
        self.group = group
        self.export_call("r", "spread", self._spread)
        self.subscribe(WellKnown.RP2P, "deliver", self._on_net)

    def _spread(self, m):
        for dst in self.group:
            self.call(WellKnown.RP2P, "send", dst, ("R", m), 64)

    def _on_net(self, src, payload, size):
        from repro.kernel import NOT_MINE

        if not (isinstance(payload, tuple) and payload[0] == "R"):
            return NOT_MINE
        self.respond("r", "arrived", src, payload[1])


class ProtocolQ(Module):
    """Middle protocol: provides q, requires r (Fig. 1's Q)."""

    PROVIDES = ("q",)
    REQUIRES = ("r",)
    PROTOCOL = "Q"

    def __init__(self, stack):
        super().__init__(stack)
        self.export_call("q", "publish", lambda m: self.call("r", "spread", ("q", m)))
        self.subscribe("r", "arrived", self._up)

    def _up(self, src, m):
        tag, inner = m
        self.respond("q", "notify", src, inner)


class ProtocolP(Module):
    """Top protocol: provides p, requires q (Fig. 1's P / Fig. 2's caller)."""

    PROVIDES = ("p",)
    REQUIRES = ("q",)
    PROTOCOL = "P"

    def __init__(self, stack):
        super().__init__(stack)
        self.responses = []
        self.export_call("p", "go", lambda m: self.call("q", "publish", m))
        self.subscribe("q", "notify", lambda src, m: self.responses.append((src, m)))


def build_figure1(n=3):
    sys_ = System(n=n, seed=91)
    net = SimNetwork(
        sys_.sim, sys_.machines, SwitchedLan(latency=ConstantLatency(0.0002))
    )
    group = list(range(n))
    ps = []
    for st in sys_.stacks:
        st.add_module(UdpModule(st, net))
        st.add_module(Rp2pModule(st))
        st.add_module(ProtocolR(st, group))
        st.add_module(ProtocolQ(st))
        p = ProtocolP(st)
        st.add_module(p)
        ps.append(p)
    return sys_, ps


class TestFigure1Architecture:
    def test_stacked_services_compose(self):
        sys_, ps = build_figure1()
        ps[0].call("p", "go", "hello")
        sys_.run(until=1.0)
        # The call descended P -> Q -> R -> network, and the responses
        # ascended on *every* stack (remote interaction of P1 with P2, P3).
        for p in ps:
            assert (0, "hello") in p.responses

    def test_bindings_one_per_service(self):
        sys_, ps = build_figure1()
        for st in sys_.stacks:
            for service in ("p", "q", "r"):
                assert st.bound_module(service) is not None


class TestFigure2CallsAndResponses:
    def test_responses_occur_in_one_or_many_stacks(self):
        sys_, ps = build_figure1()
        ps[1].call("p", "go", "multi")
        sys_.run(until=1.0)
        receivers = [i for i, p in enumerate(ps) if (1, "multi") in p.responses]
        assert receivers == [0, 1, 2]  # "responses can occur in one or many stacks"

    def test_unbound_provider_still_responds(self):
        """Fig. 2's note: Qi can respond even after being unbound."""
        sys_, ps = build_figure1()
        ps[0].call("p", "go", "before")
        sys_.run(until=1.0)
        q0 = sys_.stack(0).bound_module("q")
        sys_.stack(0).unbind("q")
        q0.respond("q", "notify", 9, "after-unbind")
        sys_.run(until=2.0)
        assert (9, "after-unbind") in ps[0].responses


class TestFigure3Composition:
    def test_indirection_hides_the_swap_from_consumers(self):
        """Fig. 3 (right): consumers call r-p; Repl-P requires p; P1 is
        replaced by newP1 behind the indirection."""
        sys_ = System(n=1, seed=92)
        st = sys_.stack(0)

        class Impl(Module):
            PROVIDES = ("p",)

            def __init__(self, stack, tag):
                super().__init__(stack, protocol=f"P-{tag}")
                self.tag = tag
                self.export_call("p", "ping", lambda: self.respond("p", "pong", self.tag))

        st.add_module(Impl(st, "old"))
        st.add_module(IndirectionModule(st, "p", calls=["ping"], responses=["pong"]))

        class Consumer(Module):
            REQUIRES = ("r-p",)
            PROTOCOL = "consumer"

            def __init__(self, stack):
                super().__init__(stack)
                self.pongs = []
                self.subscribe("r-p", "pong", self.pongs.append)

        consumer = st.add_module(Consumer(st))
        consumer.call("r-p", "ping")
        sys_.run()
        # Swap the provider behind the indirection:
        st.unbind("p")
        st.add_module(Impl(st, "new"))
        consumer.call("r-p", "ping")
        sys_.run()
        assert consumer.pongs == ["old", "new"]
        # The consumer never referenced either implementation: its only
        # dependency is the indirection service.
        assert consumer.requires == ("r-p",)
