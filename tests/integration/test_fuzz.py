"""Integration tests: fuzzer teeth, shrinking, fixture replay, determinism.

The teeth contract (both directions, at a pinned generator seed/budget):

* ``guard_change_sn=False`` — the fuzzer **rediscovers the stale-change
  anomaly** on its own: a partition-lagged stack issues a chained change
  under a stale sn, and after the heal the group splits on uniform
  agreement.  The ddmin shrinker reduces the finding to a handful of
  fault actions while *preserving guard sensitivity* (the guarded twin
  of the shrunk spec stays clean).
* ``guard_change_sn=True`` — the identical budget is violation-free: the
  sn guard is exactly the fix for everything the fuzzer finds here.

The committed fixture ``tests/fixtures/fuzz/fuzz-1-2.json`` is the
shrunk reproducer of that finding; it is replayed from JSON (generator
out of the loop) and pinned byte-identical to what the shrinker emits
today, so generator/shrinker drift cannot silently change the anomaly
this repo documents.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.fuzz import FuzzConfig, run_fuzz
from repro.fuzz.__main__ import main as fuzz_cli
from repro.scenarios.engine import run_scenario
from repro.scenarios.serde import spec_from_dict, spec_from_json, spec_to_json

#: The pinned teeth configuration: generator seed 1, indices 0..5.
#: Index 2's schedule (lopsided partition isolating stack 0 + a switch
#: chain whose chained change is issued from stack 0 mid-partition) is
#: the known guard-sensitive anomaly in this budget.
TEETH_SEED = 1
TEETH_BUDGET = 6
VIOLATOR_INDEX = 2

FIXTURE = pathlib.Path(__file__).parent.parent / "fixtures" / "fuzz" / "fuzz-1-2.json"


@pytest.fixture(scope="module")
def unguarded_report():
    return run_fuzz(
        FuzzConfig(seed=TEETH_SEED, budget=TEETH_BUDGET, guard_change_sn=False),
        jobs=2,
    )


class TestFuzzerTeeth:
    def test_unguarded_budget_rediscovers_the_anomaly(self, unguarded_report):
        assert not unguarded_report.ok
        violators = [run["index"] for run in unguarded_report.runs if not run["ok"]]
        assert violators == [VIOLATOR_INDEX]
        run = unguarded_report.runs[VIOLATOR_INDEX]
        assert "uniform agreement" in run["violated"]

    def test_guarded_budget_is_clean(self):
        report = run_fuzz(
            FuzzConfig(seed=TEETH_SEED, budget=TEETH_BUDGET, guard_change_sn=True),
            jobs=2,
        )
        assert report.ok
        assert report.violating == 0
        assert report.reproducers == []

    def test_finding_shrinks_small_and_stays_guard_sensitive(
        self, unguarded_report
    ):
        assert len(unguarded_report.reproducers) == 1
        rep = unguarded_report.reproducers[0]
        assert rep["reproducible"]
        assert rep["guard_sensitive"]
        assert rep["shrunk_size"]["faults"] <= 3
        assert rep["shrunk_size"]["faults"] < rep["original_size"]["faults"] or (
            rep["shrunk_size"]["switches"] < rep["original_size"]["switches"]
        )
        assert unguarded_report.unshrinkable == 0

    def test_shrunk_reproducer_replays_from_serde_dict(self, unguarded_report):
        spec = spec_from_dict(unguarded_report.reproducers[0]["spec"])
        result = run_scenario(spec, seed=0)
        assert not result.ok
        assert result.violations["uniform agreement"]
        # The guarded twin of the minimal spec is clean: the reproducer
        # demonstrates the guard-sensitive anomaly, nothing broader.
        from dataclasses import replace

        assert run_scenario(replace(spec, guard_change_sn=True), seed=0).ok


class TestCommittedFixture:
    def test_fixture_replays_to_the_anomaly(self):
        spec = spec_from_json(FIXTURE.read_text(encoding="utf-8"))
        assert not spec.guard_change_sn
        assert len(spec.faults) <= 3
        result = run_scenario(spec, seed=0)
        assert not result.ok
        assert result.violations["uniform agreement"]

    def test_fixture_is_byte_identical_to_fresh_shrinker_output(
        self, unguarded_report
    ):
        fresh = spec_from_dict(unguarded_report.reproducers[0]["spec"])
        assert spec_to_json(fresh) + "\n" == FIXTURE.read_text(encoding="utf-8")

    def test_fixture_replay_via_cli_exits_1(self, capsys):
        assert fuzz_cli(["--replay", str(FIXTURE)]) == 1
        out = capsys.readouterr()
        assert "FAIL" in out.out
        assert "uniform agreement" in out.err


class TestReportDeterminism:
    """The fuzz analogue of test_parallel_campaign: byte-identical JSON."""

    CONFIG = FuzzConfig(seed=TEETH_SEED, budget=4)

    def test_rerun_is_byte_identical(self):
        a = run_fuzz(self.CONFIG, jobs=1).to_json()
        b = run_fuzz(self.CONFIG, jobs=1).to_json()
        assert a == b

    def test_jobs_fanout_is_byte_identical(self):
        serial = run_fuzz(self.CONFIG, jobs=1).to_json()
        parallel = run_fuzz(self.CONFIG, jobs=3).to_json()
        assert serial == parallel

    def test_trace_off_is_byte_identical_for_clean_budgets(self):
        structural = run_fuzz(self.CONFIG, jobs=1, trace="structural").to_json()
        off = run_fuzz(self.CONFIG, jobs=1, trace="off").to_json()
        assert structural == off

    def test_report_shape(self):
        report = run_fuzz(self.CONFIG, jobs=1)
        data = json.loads(report.to_json())
        assert data["fuzz"] == {
            "generator_seed": TEETH_SEED,
            "budget": 4,
            "run_seed": 0,
            "guard_change_sn": True,
        }
        assert [run["index"] for run in data["runs"]] == [0, 1, 2, 3]
        assert data["ok"] is True


class TestFuzzCli:
    def test_guarded_cli_exits_0(self, capsys, tmp_path):
        out_path = tmp_path / "report.json"
        code = fuzz_cli(
            ["--seed", str(TEETH_SEED), "--budget", "3", "--jobs", "2",
             "--out", str(out_path)]
        )
        assert code == 0
        assert json.loads(out_path.read_text())["ok"] is True

    def test_unguarded_cli_exits_1_and_writes_shrunk_spec(self, capsys, tmp_path):
        shrunk_dir = tmp_path / "shrunk"
        code = fuzz_cli(
            ["--seed", str(TEETH_SEED), "--budget", str(TEETH_BUDGET),
             "--jobs", "2", "--unguarded", "--shrunk-dir", str(shrunk_dir)]
        )
        assert code == 1
        written = sorted(p.name for p in shrunk_dir.iterdir())
        assert written == [f"fuzz-{TEETH_SEED}-{VIOLATOR_INDEX}.json"]
        # The CLI's file matches the committed fixture byte-for-byte.
        assert (shrunk_dir / written[0]).read_text() == FIXTURE.read_text()
        err = capsys.readouterr().err
        assert "REPRODUCER" in err

    def test_explore_cli_both_directions(self, capsys):
        assert fuzz_cli(["--explore", "--stacks", "2", "--versions", "2"]) == 0
        assert "614" in capsys.readouterr().out
        assert fuzz_cli(
            ["--explore", "--stacks", "2", "--versions", "2",
             "--bug", "stack0_skips_guard"]
        ) == 1
        out = capsys.readouterr()
        assert "COUNTEREXAMPLE" in out.err
