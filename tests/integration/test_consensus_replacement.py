"""Integration tests: experiment X4 — replacing the consensus protocol.

The paper's future-work extension (Section 7 / their TR [16]): the
``r-consensus`` indirection replaces the consensus module under live
atomic-broadcast load, with the switch point agreed through consensus
itself.
"""


from repro.abcast import CtAbcastModule
from repro.consensus import CtConsensusModule
from repro.dpu import ReplConsensusModule, assert_abcast_properties
from repro.dpu.probes import DeliveryLog
from repro.fd import HeartbeatFd
from repro.kernel import Module, System, WellKnown
from repro.net import Rp2pModule, SimNetwork, SwitchedLan, UdpModule
from repro.rbcast import RBCAST_SERVICE, RbcastModule
from repro.sim import ConstantLatency, ms


def build(n=5, seed=41):
    sys_ = System(n=n, seed=seed)
    net = SimNetwork(
        sys_.sim, sys_.machines, SwitchedLan(latency=ConstantLatency(0.0002))
    )
    group = list(range(n))
    sys_.registry.register(
        "consensus-ct",
        lambda st, **kw: CtConsensusModule(st, group, **kw),
        provides=(WellKnown.CONSENSUS,),
        requires=(WellKnown.RP2P, WellKnown.FD, RBCAST_SERVICE),
        default_for=(WellKnown.CONSENSUS,),
    )
    log = DeliveryLog()

    class Sender(Module):
        REQUIRES = (WellKnown.ABCAST,)
        PROTOCOL = "sender"

        def __init__(self, stack):
            super().__init__(stack)
            self.seq = 0
            self.subscribe(
                WellKnown.ABCAST,
                "adeliver",
                lambda o, p, s: log.note_delivery(p[0], self.stack_id, self.now),
            )

        def send(self):
            key = ("wl", self.stack_id, self.seq)
            self.seq += 1
            log.note_send(key, self.stack_id, self.now)
            self.call(WellKnown.ABCAST, "abcast", (key, None), 256)

    senders, repls = [], []
    for st in sys_.stacks:
        st.add_module(UdpModule(st, net))
        st.add_module(Rp2pModule(st))
        st.add_module(HeartbeatFd(st, group, period=ms(20), timeout=ms(100)))
        st.add_module(RbcastModule(st, group))
        st.add_module(CtConsensusModule(st, group))
        repl = ReplConsensusModule(st, sys_.registry, "consensus-ct")
        st.add_module(repl)
        repls.append(repl)
        # The ABcast consumes consensus *through the indirection*.
        st.add_module(
            CtAbcastModule(st, group, consensus_service=WellKnown.R_CONSENSUS)
        )
        snd = Sender(st)
        st.add_module(snd)
        senders.append(snd)
    return sys_, senders, repls, log


class TestConsensusReplacement:
    def test_abcast_unaffected_by_consensus_swap(self):
        sys_, senders, repls, log = build()
        for k in range(30):
            for i, s in enumerate(senders):
                sys_.sim.schedule(0.01 * k + 0.001 * i, s.send)
        # Swap the consensus implementation mid-load (CT -> CT).
        sys_.sim.schedule(
            0.15, repls[2].call, WellKnown.R_CONSENSUS, "change_protocol", "consensus-ct"
        )
        sys_.run(until=5.0)
        assert_abcast_properties(log, {}, list(range(5)))
        assert all(len(log.delivery_sequence(i)) == 150 for i in range(5))

    def test_every_stack_switches_consensus(self):
        sys_, senders, repls, log = build(seed=42)
        for k in range(20):
            for s in senders:
                sys_.sim.schedule(0.01 * k, s.send)
        sys_.sim.schedule(
            0.1, repls[0].call, WellKnown.R_CONSENSUS, "change_protocol", "consensus-ct"
        )
        sys_.run(until=5.0)
        assert all(r.counters.get("switches") == 1 for r in repls)
        # All stacks landed on the *same* wire channel (agreed switch pt).
        channels = {
            st.bound_module(WellKnown.CONSENSUS).channel for st in sys_.stacks
        }
        assert len(channels) == 1

    def test_old_instances_finish_on_old_module(self):
        sys_, senders, repls, log = build(seed=43)
        for k in range(20):
            for s in senders:
                sys_.sim.schedule(0.01 * k, s.send)
        sys_.sim.schedule(
            0.1, repls[0].call, WellKnown.R_CONSENSUS, "change_protocol", "consensus-ct"
        )
        sys_.run(until=5.0)
        # Both consensus incarnations decided instances on stack 0.
        stack0 = sys_.stacks[0]
        consensus_modules = [
            m for m in stack0.modules.values() if isinstance(m, CtConsensusModule)
        ]
        assert len(consensus_modules) == 2
        decided_counts = [m.counters.get("decisions") for m in consensus_modules]
        assert all(c > 0 for c in decided_counts)

    def test_status_reflects_switch(self):
        sys_, senders, repls, log = build(seed=44)
        for s in senders:
            s.send()
        sys_.sim.schedule(
            0.05, repls[0].call, WellKnown.R_CONSENSUS, "change_protocol", "consensus-ct"
        )
        for k in range(10):
            for s in senders:
                sys_.sim.schedule(0.1 + 0.01 * k, s.send)
        sys_.run(until=5.0)
        status = sys_.stacks[0].query(WellKnown.R_CONSENSUS, "status")
        assert status["version"] == 1
        assert status["pending_changes"] == 0
