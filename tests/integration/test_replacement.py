"""Integration tests: dynamic ABcast replacement (the paper's Section 5/6).

These run the full Figure 4 stack through
:func:`repro.experiments.common.build_group_comm_system`, replace
protocols on the fly, and check every correctness property plus the
paper's headline behavioural claims.
"""


from repro.dpu import (
    assert_abcast_properties,
    assert_weak_stack_well_formedness,
    check_weak_protocol_operationability,
)
from repro.experiments import (
    GroupCommConfig,
    PROTOCOL_CT,
    PROTOCOL_SEQ,
    PROTOCOL_TOKEN,
    build_group_comm_system,
)
from repro.kernel import WellKnown


def run_with_switches(switches, n=4, seed=7, duration=6.0, load=60.0, **cfg_kwargs):
    """Run a loaded system performing the given (time, protocol) switches."""
    cfg = GroupCommConfig(
        n=n, seed=seed, load_msgs_per_sec=load, load_stop=duration, **cfg_kwargs
    )
    gcs = build_group_comm_system(cfg)
    assert gcs.manager is not None
    for at, prot in switches:
        gcs.manager.request_change(prot, from_stack=0, at=at)
    gcs.run(until=duration)
    gcs.run_to_quiescence()
    return gcs


def assert_all_properties(gcs):
    alive = [s for s in range(gcs.config.n) if not gcs.system.machine(s).crashed]
    assert_abcast_properties(gcs.log, gcs.system.trace.crashes(), alive)
    assert_weak_stack_well_formedness(gcs.system.trace)


class TestPaperExperiment:
    """CT replaced by CT — exactly the paper's Section 6 scenario."""

    def test_ct_to_ct_preserves_all_properties(self):
        gcs = run_with_switches([(3.0, PROTOCOL_CT)])
        assert_all_properties(gcs)

    def test_every_stack_switches(self):
        gcs = run_with_switches([(3.0, PROTOCOL_CT)])
        protos = gcs.manager.current_protocols()
        assert set(protos.values()) == {PROTOCOL_CT}
        assert gcs.manager.replacement_complete(1)
        window = gcs.manager.window(1)
        assert window.duration is not None and window.duration > 0

    def test_no_message_lost_across_switch(self):
        gcs = run_with_switches([(3.0, PROTOCOL_CT)])
        sent = set(gcs.log.sends)
        for s in range(gcs.config.n):
            assert gcs.log.delivered_set(s) == sent

    def test_old_module_remains_in_stack_unbound(self):
        """Unbinding does not remove (paper, Section 2)."""
        gcs = run_with_switches([(3.0, PROTOCOL_CT)])
        stack0 = gcs.system.stack(0)
        ct_modules = stack0.modules_providing(WellKnown.ABCAST)
        assert len(ct_modules) == 2  # old incarnation + new incarnation
        bound = stack0.bound_module(WellKnown.ABCAST)
        assert bound in ct_modules

    def test_application_never_blocked(self):
        """The paper's claim against Maestro: app calls (to r-abcast)
        are never buffered/blocked by Algorithm 1."""
        gcs = run_with_switches([(3.0, PROTOCOL_CT)])
        for stack in gcs.system.stacks:
            assert stack.blocked_call_count(WellKnown.R_ABCAST) == 0
        # Blocking exists only *below* the indirection (abcast service,
        # during the unbind->bind gap) and is bounded by creation cost:
        total_blocked = sum(s.blocked_time_total for s in gcs.system.stacks)
        assert total_blocked <= gcs.config.n * gcs.config.creation_cost * 3


class TestCrossProtocolSwitches:
    def test_ct_to_sequencer(self):
        gcs = run_with_switches([(3.0, PROTOCOL_SEQ)])
        assert_all_properties(gcs)
        assert set(gcs.manager.current_protocols().values()) == {PROTOCOL_SEQ}

    def test_ct_to_token(self):
        gcs = run_with_switches([(3.0, PROTOCOL_TOKEN)])
        assert_all_properties(gcs)

    def test_sequencer_back_to_ct(self):
        gcs = run_with_switches(
            [(2.0, PROTOCOL_SEQ), (4.0, PROTOCOL_CT)], duration=7.0
        )
        assert_all_properties(gcs)
        assert set(gcs.manager.current_protocols().values()) == {PROTOCOL_CT}

    def test_switch_chain_all_three(self):
        gcs = run_with_switches(
            [(2.0, PROTOCOL_SEQ), (3.5, PROTOCOL_TOKEN), (5.0, PROTOCOL_CT)],
            duration=8.0,
        )
        assert_all_properties(gcs)
        assert gcs.manager.module(0).seq_number == 3


class TestOperationability:
    def test_new_protocol_weakly_operational(self):
        gcs = run_with_switches([(3.0, PROTOCOL_SEQ)])
        stacks = list(range(gcs.config.n))
        assert check_weak_protocol_operationability(
            gcs.system.trace, PROTOCOL_SEQ, stacks
        ) == []


class TestReplacementWindow:
    def test_window_is_short(self):
        """Paper: switching cost negligible; perturbation ~1s at scale.
        At this load the measured window stays well under a second."""
        gcs = run_with_switches([(3.0, PROTOCOL_CT)])
        window = gcs.manager.window(1)
        assert window.duration < 1.0

    def test_window_contains_all_stacks(self):
        gcs = run_with_switches([(3.0, PROTOCOL_CT)])
        window = gcs.manager.window(1)
        assert set(window.completed) == set(range(gcs.config.n))
        assert window.start <= min(window.started.values())
        assert window.end == max(window.completed.values())


class TestGuardVariants:
    def test_concurrent_changes_guarded_drop(self):
        cfg = dict(guard_change_sn=True, reissue_policy="drop")
        gcs = run_with_switches(
            [(3.0, PROTOCOL_CT), (3.001, PROTOCOL_SEQ)], duration=7.0, **cfg
        )
        assert_all_properties(gcs)

    def test_concurrent_changes_guarded_reissue(self):
        cfg = dict(guard_change_sn=True, reissue_policy="reissue")
        gcs = run_with_switches(
            [(3.0, PROTOCOL_CT), (3.001, PROTOCOL_SEQ)], duration=7.0, **cfg
        )
        assert_all_properties(gcs)
        # Under 'reissue', the superseded change is eventually applied too.
        repl = gcs.manager.module(0)
        assert repl.seq_number == 2

    def test_literal_variant_ok_when_changes_not_concurrent(self):
        """The paper's setting: a single replacement — the literal
        algorithm is correct there."""
        gcs = run_with_switches(
            [(3.0, PROTOCOL_CT)], guard_change_sn=False
        )
        assert_all_properties(gcs)


class TestGmAcrossSwitch:
    def test_gm_keeps_working_during_replacement(self):
        """The paper: protocols depending on the replaced one 'provide
        service correctly and with negligible delay while the global
        update takes place'."""
        cfg = GroupCommConfig(
            n=4, seed=9, load_msgs_per_sec=60.0, load_stop=6.0, with_gm=True
        )
        gcs = build_group_comm_system(cfg)
        gcs.manager.request_change(PROTOCOL_CT, from_stack=0, at=3.0)
        # A membership operation right in the middle of the switch:
        gm0 = next(
            m for m in gcs.system.stack(0).modules.values() if m.protocol == "gm"
        )
        gcs.system.sim.schedule_at(3.01, gm0.call, WellKnown.GM, "propose_expel", 3)
        gcs.run(until=6.0)
        gcs.run_to_quiescence()
        views = []
        for stack in gcs.system.stacks[:3]:
            gm = next(m for m in stack.modules.values() if m.protocol == "gm")
            views.append(gm.view_history)
        # Identical view sequences on every stack, and the expel applied:
        assert views[0] == views[1] == views[2]
        assert views[0][-1][1] == frozenset({0, 1, 2})
        assert_all_properties(gcs)
