"""Integration tests: reclaiming old protocol modules after a switch.

The paper keeps old modules around forever ("unbinding a module does not
remove it from the stack"); a system running for months cannot.  The
``retire_old_after`` knob removes the unbound old module once its
in-flight traffic has surely drained; correctness must be unaffected.
"""

import pytest

from repro.dpu import ReplAbcastModule, assert_abcast_properties
from repro.errors import ReplacementError
from repro.experiments import (
    GroupCommConfig,
    PROTOCOL_CT,
    build_group_comm_system,
)
from repro.kernel import System, WellKnown


def build_with_retirement(retire_after=1.0, n=4, seed=81, duration=8.0):
    """The standard system, with retirement enabled on every Repl module."""
    cfg = GroupCommConfig(
        n=n, seed=seed, load_msgs_per_sec=60.0, load_stop=duration
    )
    gcs = build_group_comm_system(cfg)
    for s in range(n):
        gcs.manager.module(s).retire_old_after = retire_after
    return gcs


class TestRetirement:
    def test_old_module_removed_after_delay(self):
        gcs = build_with_retirement(retire_after=1.0)
        gcs.manager.request_change(PROTOCOL_CT, from_stack=0, at=3.0)
        gcs.run(until=3.5)
        # Old incarnation still present right after the switch...
        assert len(gcs.system.stack(0).modules_providing(WellKnown.ABCAST)) == 2
        gcs.run(until=8.0)
        gcs.run_to_quiescence()
        # ...and reclaimed after the retirement delay.
        for s in range(4):
            assert len(gcs.system.stack(s).modules_providing(WellKnown.ABCAST)) == 1
            assert gcs.manager.module(s).counters.get("retired_modules") == 1

    def test_correctness_unaffected_by_retirement(self):
        gcs = build_with_retirement(retire_after=1.0)
        gcs.manager.request_change(PROTOCOL_CT, from_stack=0, at=3.0)
        gcs.run(until=8.0)
        gcs.run_to_quiescence()
        assert_abcast_properties(gcs.log, {}, [0, 1, 2, 3])

    def test_rebound_module_never_retired(self):
        """If the 'old' module got re-bound (e.g. a revert switch), the
        retirement timer must leave it alone."""
        gcs = build_with_retirement(retire_after=2.0, duration=10.0)
        gcs.manager.request_change(PROTOCOL_CT, from_stack=0, at=3.0)
        gcs.run(until=10.0)
        gcs.run_to_quiescence()
        for s in range(4):
            bound = gcs.system.stack(s).bound_module(WellKnown.ABCAST)
            assert bound is not None
            assert not bound.stopped

    def test_invalid_delay_rejected(self):
        sys_ = System(n=1, seed=0)
        with pytest.raises(ReplacementError):
            ReplAbcastModule(
                sys_.stack(0), sys_.registry, "x", retire_old_after=0.0
            )


class TestBufferCap:
    def test_unclaimed_responses_capped(self):
        """After retirement, frames of the dead incarnation are never
        claimed; the per-service cap bounds the buffer."""
        from repro.kernel import Module

        sys_ = System(n=1, seed=0)
        stack = sys_.stack(0)
        stack.max_buffered_responses = 5

        class Emitter(Module):
            PROVIDES = ("e",)
            PROTOCOL = "emitter"

        emitter = stack.add_module(Emitter(stack))
        for i in range(12):
            emitter.respond("e", "ev", i)
        sys_.run()
        assert stack.buffered_response_count("e") == 5
        assert stack.buffered_responses_dropped == 7


class TestRetireBeforeBound:
    def test_retire_delay_shorter_than_creation_defers_until_bound(self):
        """A retirement due inside the unbind→bind gap must not reclaim
        the module the stack is still switching away from mid-window;
        it defers past the creation and then retires normally (and the
        task's chain state reflects it)."""
        gcs = build_with_retirement(retire_after=0.002)  # < creation_cost (5 ms)
        gcs.manager.request_change(PROTOCOL_CT, from_stack=0, at=3.0)
        gcs.run(until=8.0)
        gcs.run_to_quiescence()
        for s in range(4):
            module = gcs.manager.module(s)
            assert len(gcs.system.stack(s).modules_providing(WellKnown.ABCAST)) == 1
            assert module.counters.get("retired_modules") == 1
            (task,) = module.switch_chain
            assert task.state == "retired"
            assert task.retired_at > task.bound_at
        assert_abcast_properties(gcs.log, {}, [0, 1, 2, 3])
