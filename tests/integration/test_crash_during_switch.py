"""Integration tests: fault injection around replacements.

The replacement algorithm inherits fault tolerance from the ABcast it
rides on: a crash of any minority — before, during, or after the switch —
must leave the survivors consistent, with the change applied everywhere
that matters (weak protocol-operationability quantifies over non-crashed
stacks only).
"""

import pytest

from repro.dpu import (
    assert_abcast_properties,
    check_weak_protocol_operationability,
)
from repro.experiments import (
    GroupCommConfig,
    PROTOCOL_CT,
    build_group_comm_system,
)
from repro.kernel import WellKnown


def run_with_crash(crash_stack, crash_at, n=5, seed=31, duration=8.0,
                   switch_at=4.0, to_protocol=PROTOCOL_CT):
    cfg = GroupCommConfig(
        n=n, seed=seed, load_msgs_per_sec=50.0, load_stop=duration
    )
    gcs = build_group_comm_system(cfg)
    gcs.manager.request_change(to_protocol, from_stack=0, at=switch_at)
    gcs.system.crash_at(crash_stack, crash_at)
    gcs.run(until=duration)
    gcs.run_to_quiescence(extra=8.0)
    return gcs


def check_survivors(gcs, crashed_stack, crash_at):
    alive = [s for s in range(gcs.config.n) if s != crashed_stack]
    # Messages from the crashed stack may be cut off mid-protocol.
    in_flight = {
        key
        for key, (sender, t) in gcs.log.sends.items()
        if sender == crashed_stack
    }
    assert_abcast_properties(
        gcs.log, {crashed_stack: crash_at}, list(range(gcs.config.n)),
        in_flight_ok=in_flight,
    )
    # Survivors deliver identical sequences.
    seqs = {tuple(gcs.log.delivery_sequence(s)) for s in alive}
    assert len(seqs) == 1
    return alive


class TestCrashBeforeSwitch:
    def test_crash_then_switch_succeeds_on_survivors(self):
        gcs = run_with_crash(crash_stack=2, crash_at=2.0)
        alive = check_survivors(gcs, 2, 2.0)
        for s in alive:
            assert (
                gcs.system.stack(s).bound_module(WellKnown.ABCAST).protocol
                == PROTOCOL_CT
            )
            assert gcs.manager.module(s).seq_number == 1


class TestCrashDuringSwitch:
    @pytest.mark.parametrize("offset_ms", [0.0, 2.0, 6.0, 20.0])
    def test_crash_inside_the_window(self, offset_ms):
        """Crashes landing exactly inside the replacement window."""
        gcs = run_with_crash(crash_stack=1, crash_at=4.0 + offset_ms / 1e3)
        check_survivors(gcs, 1, 4.0 + offset_ms / 1e3)

    def test_initiator_crash_right_after_request(self):
        """The stack that *requested* the change dies immediately; the
        change message is already in the old protocol's total order, so
        the switch still happens everywhere else (uniform agreement)."""
        gcs = run_with_crash(crash_stack=0, crash_at=4.003, switch_at=4.0)
        alive = check_survivors(gcs, 0, 4.003)
        switched = [
            gcs.manager.module(s).seq_number == 1 for s in alive
        ]
        # Either the change made it into the total order before the crash
        # (everyone switches) or it did not (nobody does) — never a mix.
        assert len(set(switched)) == 1

    def test_operationability_quantifies_over_survivors(self):
        gcs = run_with_crash(crash_stack=3, crash_at=4.001)
        violations = check_weak_protocol_operationability(
            gcs.system.trace, PROTOCOL_CT, list(range(5))
        )
        assert violations == []


class TestCrashAfterSwitch:
    def test_crash_in_new_protocol_era(self):
        gcs = run_with_crash(crash_stack=4, crash_at=6.0)
        alive = check_survivors(gcs, 4, 6.0)
        post = {k for k, (s, t) in gcs.log.sends.items() if t > 6.5 and s in alive}
        assert post, "survivors kept sending"
        for s in alive:
            assert post <= gcs.log.delivered_set(s)
