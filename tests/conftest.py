"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.kernel import Module, System
from repro.net import SimNetwork, SwitchedLan
from repro.sim import ConstantLatency, Simulator


@pytest.fixture
def sim() -> Simulator:
    """A fresh deterministic simulator."""
    return Simulator(seed=1234)


@pytest.fixture
def system() -> System:
    """A three-stack system without a network."""
    return System(n=3, seed=1234)


@pytest.fixture
def networked_system():
    """A three-stack system on a deterministic (constant-latency) LAN."""
    sys_ = System(n=3, seed=1234)
    lan = SwitchedLan(latency=ConstantLatency(100e-6))
    sys_.network = SimNetwork(sys_.sim, sys_.machines, lan)
    return sys_


class RecordingModule(Module):
    """A minimal consumer module that records every response it sees."""

    PROTOCOL = "recorder"

    def __init__(self, stack, service: str, events: tuple = ("deliver",)):
        super().__init__(stack, provides=(), requires=(service,))
        self.records: list = []
        for event in events:
            self.subscribe(
                service,
                event,
                (lambda ev: lambda *args: self.records.append((ev, args)))(event),
            )


@pytest.fixture
def recording_module_cls():
    return RecordingModule
